"""Correctness tests for the affectance-selective dissemination layer (e13)."""

import pytest

from repro.experiments.e13_selective_dissemination import sweep_point
from repro.protocols.dissemination import (
    SCHEDULERS,
    DisseminationResult,
    disseminate,
)
from repro.sim.adversity import ABORTED, adversity_state
from repro.sim.errors import AdversityAbort
from repro.topology.generators import ad_hoc_affectance_graph
from repro.topology.graph import WeightedGraph
from repro.topology.properties import breadth_first_levels


def build_instance(edges, affectance_overrides=None, n=None):
    """Hand-built identity graph plus a uniform affectance map."""
    if n is None:
        n = max(max(u, v) for u, v in edges) + 1
    graph = WeightedGraph()
    graph.add_nodes(range(n))
    affectance = {}
    for u, v in edges:
        graph.add_edge(u, v, 1)
        key = (u, v) if u < v else (v, u)
        affectance[key] = 0.5
    if affectance_overrides:
        for key, value in affectance_overrides.items():
            affectance[key] = value
    return graph, affectance


def path_instance(n):
    """A path 0-1-…-(n-1) with uniform affectance."""
    return build_instance([(i, i + 1) for i in range(n - 1)])


class TestCompleteness:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_star_completes_in_one_round(self, scheduler):
        # a lone transmitter is always decoded by every uninformed
        # neighbour — the collision-free base case of the physical layer
        graph, affectance = build_instance([(0, i) for i in range(1, 6)])
        result = disseminate(graph, affectance, scheduler=scheduler)
        assert result.complete
        assert result.rounds == 1
        assert result.receptions == 5

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_path_takes_one_round_per_layer(self, scheduler):
        # on a path the frontier is a single station in every round, so
        # the deterministic schedulers walk it in exactly n - 1 rounds;
        # decay may idle a round whenever its backoff coin comes up silent
        graph, affectance = path_instance(8)
        result = disseminate(graph, affectance, scheduler=scheduler)
        assert result.complete
        if scheduler == "decay":
            assert result.rounds >= 7
        else:
            assert result.rounds == 7
        assert result.transmissions == 7

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("n", (32, 64))
    def test_ad_hoc_instances_complete(self, scheduler, n):
        graph, affectance = ad_hoc_affectance_graph(
            n, seed=11, return_affectance=True
        )
        result = disseminate(graph, affectance, scheduler=scheduler)
        assert result.complete
        assert result.informed == n
        assert result.receptions == n - 1

    def test_rounds_bounded_below_by_bfs_layers(self):
        graph, affectance = ad_hoc_affectance_graph(
            64, seed=11, return_affectance=True
        )
        layers = max(breadth_first_levels(graph, 0).values())
        for scheduler in SCHEDULERS:
            result = disseminate(graph, affectance, scheduler=scheduler)
            assert result.rounds >= layers

    def test_selective_packs_at_least_as_well_as_round_robin(self):
        graph, affectance = ad_hoc_affectance_graph(
            96, seed=11, return_affectance=True
        )
        selective = disseminate(graph, affectance, scheduler="selective")
        round_robin = disseminate(graph, affectance, scheduler="round_robin")
        assert selective.rounds <= round_robin.rounds
        # round-robin pays one round per transmission by construction
        assert round_robin.rounds == round_robin.transmissions

    def test_selective_resolves_the_equal_signal_collision(self):
        # 1 and 2 both border 3 with equal signal: transmitting together
        # would collide forever, so the family must pick exactly one
        graph, affectance = build_instance(
            [(0, 1), (0, 2), (1, 3), (2, 3)]
        )
        result = disseminate(
            graph, affectance, scheduler="selective", record_history=True
        )
        assert result.complete
        assert result.rounds == 2
        last = result.history[-1]
        assert len(set(last.transmitters) & {1, 2}) == 1
        assert last.received == (3,)


class TestHistoryDifferential:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_recorded_rounds_match_brute_force_physics(self, scheduler):
        # replay every recorded round against an independent (dict-based)
        # recomputation of the reception rule: v decodes its strongest
        # transmitting neighbour iff that signal strictly exceeds the sum
        # of the other transmitting neighbours' signals
        graph, affectance = ad_hoc_affectance_graph(
            32, seed=7, return_affectance=True
        )
        result = disseminate(
            graph, affectance, scheduler=scheduler, record_history=True
        )
        signal = {
            key: 1.0 / max(alpha, 1e-9) for key, alpha in affectance.items()
        }
        adjacency = {u: set(graph.adjacency()[u]) for u in graph.nodes()}
        informed = {0}
        for trace in result.history:
            for u in trace.transmitters:
                # a transmitter is informed and has an uninformed neighbour
                assert u in informed
                assert any(v not in informed for v in adjacency[u])
            expected = []
            for v in sorted(set(graph.nodes()) - informed):
                heard = [
                    signal[(u, v) if u < v else (v, u)]
                    for u in trace.transmitters
                    if u in adjacency[v]
                ]
                if heard and 2.0 * max(heard) > sum(heard):
                    expected.append(v)
            assert list(trace.received) == expected
            informed.update(trace.received)
        assert informed == set(graph.nodes())
        assert len(result.history) == result.rounds

    def test_history_off_by_default(self):
        graph, affectance = path_instance(4)
        assert disseminate(graph, affectance).history is None


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_same_seed_same_run(self, scheduler):
        graph, affectance = ad_hoc_affectance_graph(
            48, seed=3, return_affectance=True
        )
        first = disseminate(graph, affectance, scheduler=scheduler, seed=9)
        second = disseminate(graph, affectance, scheduler=scheduler, seed=9)
        assert first == second

    def test_decay_seed_changes_the_run(self):
        graph, affectance = ad_hoc_affectance_graph(
            48, seed=3, return_affectance=True
        )
        runs = {
            disseminate(
                graph, affectance, scheduler="decay", seed=s
            ).rounds
            for s in range(6)
        }
        assert len(runs) > 1


class TestAdversity:
    def test_total_loss_aborts_within_the_round_budget(self):
        graph, affectance = ad_hoc_affectance_graph(
            32, seed=11, return_affectance=True
        )
        state = adversity_state(
            {"name": "loss", "loss_rate": 1.0, "delay_rate": 0.0},
            "dissemination-loss", 32,
        )
        with pytest.raises(AdversityAbort) as excinfo:
            disseminate(graph, affectance, adversity=state)
        assert excinfo.value.rounds == state.round_budget(32)
        assert 0 < excinfo.value.pending < 32

    def test_certain_jam_aborts_within_the_round_budget(self):
        graph, affectance = ad_hoc_affectance_graph(
            32, seed=11, return_affectance=True
        )
        state = adversity_state(
            {"name": "jam", "jam_rate": 1.0}, "dissemination-jam", 32
        )
        with pytest.raises(AdversityAbort) as excinfo:
            disseminate(graph, affectance, adversity=state)
        assert excinfo.value.rounds <= state.round_budget(32)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_moderate_loss_degrades_but_completes(self, scheduler):
        graph, affectance = ad_hoc_affectance_graph(
            48, seed=11, return_affectance=True
        )
        clean = disseminate(graph, affectance, scheduler=scheduler)
        state = adversity_state(
            {"name": "loss", "loss_rate": 0.3, "delay_rate": 0.0},
            "dissemination-moderate", 48, scheduler,
        )
        lossy = disseminate(
            graph, affectance, scheduler=scheduler, adversity=state
        )
        assert lossy.complete
        assert lossy.rounds >= clean.rounds
        assert state.faults_injected > 0

    def test_explicit_round_cap_overrides_the_budget(self):
        graph, affectance = path_instance(16)
        state = adversity_state(
            {"name": "loss", "loss_rate": 1.0, "delay_rate": 0.0},
            "dissemination-cap", 16,
        )
        with pytest.raises(AdversityAbort) as excinfo:
            disseminate(graph, affectance, adversity=state, max_rounds=5)
        assert excinfo.value.rounds == 5


class TestValidation:
    def test_unknown_scheduler_rejected(self):
        graph, affectance = path_instance(4)
        with pytest.raises(ValueError):
            disseminate(graph, affectance, scheduler="aloha")

    def test_source_out_of_range_rejected(self):
        graph, affectance = path_instance(4)
        with pytest.raises(ValueError):
            disseminate(graph, affectance, source=4)

    def test_missing_affectance_link_rejected(self):
        graph, affectance = path_instance(4)
        del affectance[(1, 2)]
        with pytest.raises(ValueError):
            disseminate(graph, affectance)

    def test_non_identity_graph_rejected(self):
        graph = WeightedGraph()
        graph.add_nodes(["a", "b"])
        graph.add_edge("a", "b", 1)
        with pytest.raises(ValueError):
            disseminate(graph, {("a", "b"): 1.0})


class TestE13Experiment:
    def test_fault_free_row_schema(self):
        row = sweep_point(32)
        assert row["status"] == "ok"
        assert row["n"] == 32
        assert row["r_selective"] >= row["layers"]
        assert row["r_selective"] <= row["r_round_robin"]
        assert row["faults_injected"] == 0
        assert row["sel_vs_rr"] >= 1.0

    def test_total_loss_row_reports_bounded_aborts(self):
        row = sweep_point(
            32, adversity={"name": "loss", "loss_rate": 1.0, "delay_rate": 0.0}
        )
        assert row["r_selective"] == ABORTED
        assert row["r_decay"] == ABORTED
        assert row["r_round_robin"] == ABORTED
        assert row["status"] == "abort:decay,round_robin,selective"
        assert row["sel_vs_rr"] == "-"
        assert row["faults_injected"] > 0

    def test_result_dataclass_complete_property(self):
        partial = DisseminationResult(
            scheduler="decay", n=8, rounds=3, informed=5,
            transmissions=4, receptions=4,
        )
        assert not partial.complete
