"""Tests for the randomized partitioning algorithm (Section 4)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition.randomized import (
    RandomizedPartitioner,
    escalation_sequence,
    ln_star,
)
from repro.core.partition.validation import validate_partition
from repro.topology.generators import grid_graph, ring_graph
from repro.topology.graph import WeightedGraph


class TestHelpers:
    def test_ln_star_values(self):
        assert ln_star(1) == 0
        assert ln_star(2) == 1
        assert ln_star(15) == 2
        assert ln_star(1_000_000) == 3

    def test_ln_star_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ln_star(0)

    def test_escalation_sequence_is_a_tower(self):
        values = escalation_sequence(4)
        assert values[0] == 1.0
        assert values[1] == pytest.approx(math.e)
        assert values[2] == pytest.approx(math.exp(math.e))
        assert values[3] > values[2]


class TestPartition:
    def test_structure_and_radius_bound(self, medium_grid):
        n = medium_grid.num_nodes()
        result = RandomizedPartitioner(medium_grid, seed=1).run()
        report = validate_partition(
            result.forest, medium_grid, max_radius_bound=4 * math.sqrt(n)
        )
        assert report.ok, report.violations

    def test_expected_tree_count_is_order_sqrt_n(self):
        graph = grid_graph(12, 12)
        counts = [
            RandomizedPartitioner(graph, seed=seed).run().num_fragments
            for seed in range(6)
        ]
        sqrt_n = math.sqrt(graph.num_nodes())
        assert sum(counts) / len(counts) <= 4 * sqrt_n

    def test_every_node_covered_on_ring(self):
        graph = ring_graph(60)
        result = RandomizedPartitioner(graph, seed=3).run()
        assert result.forest.num_nodes() == 60
        report = validate_partition(result.forest, graph)
        assert report.ok

    def test_reproducible_given_seed(self, medium_grid):
        first = RandomizedPartitioner(medium_grid, seed=9).run()
        second = RandomizedPartitioner(medium_grid, seed=9).run()
        assert first.forest.parent_map() == second.forest.parent_map()
        assert first.metrics.rounds == second.metrics.rounds

    def test_different_seeds_can_differ(self, medium_grid):
        first = RandomizedPartitioner(medium_grid, seed=1).run()
        second = RandomizedPartitioner(medium_grid, seed=2).run()
        assert (
            first.forest.parent_map() != second.forest.parent_map()
            or first.num_fragments != second.num_fragments
            or True  # identical outcomes are possible, the test only checks no crash
        )

    def test_iteration_records_are_consistent(self, medium_grid):
        result = RandomizedPartitioner(medium_grid, seed=5).run()
        assert result.iterations
        for record in result.iterations:
            assert record.free_after <= record.free_before
            assert 0.0 < record.head_probability <= 1.0

    def test_rejects_bad_graphs(self):
        with pytest.raises(ValueError):
            RandomizedPartitioner(WeightedGraph())
        disconnected = WeightedGraph()
        disconnected.add_nodes([0, 1])
        with pytest.raises(ValueError):
            RandomizedPartitioner(disconnected)

    @given(st.integers(min_value=3, max_value=9), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_property_radius_bound_holds_on_grids(self, side, seed):
        graph = grid_graph(side, side)
        result = RandomizedPartitioner(graph, seed=seed).run()
        n = graph.num_nodes()
        assert result.forest.max_radius() <= 4 * math.sqrt(n)
        assert result.forest.num_nodes() == n


class TestLasVegas:
    def test_verification_usually_accepts(self, medium_grid):
        result = RandomizedPartitioner(medium_grid, seed=2, las_vegas=True).run()
        assert result.verified
        assert result.restarts <= 2

    def test_las_vegas_output_still_valid(self, medium_grid):
        result = RandomizedPartitioner(medium_grid, seed=4, las_vegas=True).run()
        report = validate_partition(result.forest, medium_grid)
        assert report.ok

    def test_monte_carlo_does_not_verify(self, medium_grid):
        result = RandomizedPartitioner(medium_grid, seed=4, las_vegas=False).run()
        assert result.verified is False
        assert result.restarts == 0


class TestNonIntegerNodes:
    """The hot loops index nodes 0..n-1; when the graph's own labels are NOT
    that enumeration (the `identity` fast path is off), the general
    translation path must produce an equally valid, deterministic result."""

    def _relabeled_grid(self):
        graph = grid_graph(8, 8)
        return graph.relabeled({node: f"node-{node}" for node in graph.nodes()})

    def test_string_labelled_partition_is_valid(self):
        graph = self._relabeled_grid()
        result = RandomizedPartitioner(graph, seed=3, las_vegas=True).run()
        report = validate_partition(result.forest, graph)
        assert report.ok, report.violations
        assert result.forest.max_radius() <= 4 * math.sqrt(graph.num_nodes())

    def test_string_labelled_partition_is_deterministic(self):
        first = RandomizedPartitioner(self._relabeled_grid(), seed=3).run()
        second = RandomizedPartitioner(self._relabeled_grid(), seed=3).run()
        assert first.forest.parent_map() == second.forest.parent_map()
        assert (
            first.metrics.point_to_point_messages
            == second.metrics.point_to_point_messages
        )

    def test_float_labels_do_not_take_identity_fast_path(self):
        # 2.0 == 2 compares equal to its index but is not usable as one;
        # the identity fast path must reject it and the general path run
        graph = grid_graph(4, 4)
        floats = graph.relabeled({node: float(node) for node in graph.nodes()})
        result = RandomizedPartitioner(floats, seed=3, las_vegas=True).run()
        report = validate_partition(result.forest, floats)
        assert report.ok, report.violations
