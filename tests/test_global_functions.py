"""Tests for global sensitive functions: semigroups, the multimedia algorithms
and the single-medium baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.global_function.baselines import (
    compute_on_channel_only,
    compute_on_point_to_point_only,
)
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import (
    BOOLEAN_OR,
    INTEGER_ADDITION,
    INTEGER_MAXIMUM,
    INTEGER_MINIMUM,
    XOR,
    standard_functions,
)
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.topology.generators import ring_graph
from repro.topology.weights import assign_distinct_weights


class TestSemigroups:
    def test_evaluate(self):
        assert INTEGER_ADDITION.evaluate([1, 2, 3]) == 6
        assert INTEGER_MINIMUM.evaluate([5, 2, 9]) == 2
        assert INTEGER_MAXIMUM.evaluate([5, 2, 9]) == 9
        assert XOR.evaluate([1, 1, 1]) == 1

    def test_empty_operands(self):
        assert INTEGER_ADDITION.evaluate([]) == 0
        with pytest.raises(ValueError):
            INTEGER_MINIMUM.evaluate([])

    def test_sensitivity_checks(self):
        assert INTEGER_ADDITION.check_global_sensitivity([4, 5, 6])
        assert INTEGER_MINIMUM.check_global_sensitivity([4, 5, 6])
        assert XOR.check_global_sensitivity([0, 1, 0])

    def test_boolean_or_is_not_global_sensitive(self):
        # once one operand is True the others cannot change the value
        assert not BOOLEAN_OR.check_global_sensitivity([True, False, False])

    def test_standard_functions_list(self):
        names = {fn.name for fn in standard_functions()}
        assert names == {"sum", "min", "max", "xor"}

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_addition_and_xor_always_sensitive(self, operands):
        assert INTEGER_ADDITION.check_global_sensitivity(operands)
        assert XOR.check_global_sensitivity(operands)

    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=20),
        st.sampled_from(standard_functions()),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_evaluation_is_order_independent(self, operands, function):
        forward = function.evaluate(operands)
        backward = function.evaluate(list(reversed(operands)))
        assert forward == backward


class TestMultimediaComputation:
    @pytest.mark.parametrize("method", ["deterministic", "randomized"])
    def test_sum_on_grid(self, medium_grid, method):
        inputs = {node: int(node) for node in medium_grid.nodes()}
        result = compute_global_function(
            medium_grid, INTEGER_ADDITION, inputs, method=method, seed=3
        )
        assert result.value == sum(inputs.values())
        assert result.num_fragments >= 1
        assert result.total_rounds > 0

    @pytest.mark.parametrize("function", [INTEGER_MINIMUM, INTEGER_MAXIMUM, XOR])
    def test_other_functions(self, small_grid, function):
        inputs = {node: int(node) * 3 + 1 for node in small_grid.nodes()}
        result = compute_global_function(
            small_grid, function, inputs, method="randomized", seed=1
        )
        assert result.value == function.evaluate(list(inputs.values()))

    def test_reusing_a_forest_skips_partition_cost(self, small_grid):
        forest = DeterministicPartitioner(small_grid).run().forest
        inputs = {node: 1 for node in small_grid.nodes()}
        reused = compute_global_function(
            small_grid, INTEGER_ADDITION, inputs, method="deterministic",
            forest=forest, seed=1,
        )
        fresh = compute_global_function(
            small_grid, INTEGER_ADDITION, inputs, method="deterministic", seed=1
        )
        assert reused.value == fresh.value == small_grid.num_nodes()
        assert reused.partition_rounds == 0
        assert reused.total_rounds < fresh.total_rounds

    def test_tightened_balance_variant(self, medium_grid):
        inputs = {node: 2 for node in medium_grid.nodes()}
        result = compute_global_function(
            medium_grid, INTEGER_ADDITION, inputs,
            method="deterministic", tightened_balance=True, seed=1,
        )
        assert result.value == 2 * medium_grid.num_nodes()

    def test_unknown_method_rejected(self, small_grid):
        with pytest.raises(ValueError):
            compute_global_function(small_grid, INTEGER_ADDITION, {}, method="magic")

    def test_missing_inputs_rejected(self, small_grid):
        with pytest.raises(ValueError):
            compute_global_function(small_grid, INTEGER_ADDITION, {0: 1})

    def test_phase_breakdown_adds_up(self, small_grid):
        inputs = {node: 1 for node in small_grid.nodes()}
        result = compute_global_function(
            small_grid, INTEGER_ADDITION, inputs, method="randomized", seed=2
        )
        assert (
            result.partition_rounds + result.local_rounds + result.global_slots
            == result.total_rounds
        )


class TestBaselines:
    def test_point_to_point_baseline_value_and_time(self):
        graph = ring_graph(32)
        inputs = {node: 1 for node in graph.nodes()}
        result = compute_on_point_to_point_only(graph, INTEGER_ADDITION, inputs)
        assert result.value == 32
        # Ω(d): the ring has diameter 16, so at least 16 rounds are needed
        assert result.rounds >= 16

    def test_channel_baseline_value_and_time(self):
        graph = ring_graph(20)
        inputs = {node: node for node in graph.nodes()}
        result = compute_on_channel_only(graph, INTEGER_ADDITION, inputs, seed=1)
        assert result.value == sum(inputs.values())
        # Ω(n): every operand needs its own successful slot
        assert result.rounds >= 20

    def test_channel_baseline_deterministic_method(self):
        graph = ring_graph(10)
        inputs = {node: node for node in graph.nodes()}
        result = compute_on_channel_only(
            graph, INTEGER_ADDITION, inputs, method="deterministic"
        )
        assert result.value == sum(inputs.values())

    def test_channel_baseline_unknown_method(self):
        graph = ring_graph(5)
        with pytest.raises(ValueError):
            compute_on_channel_only(graph, INTEGER_ADDITION, {}, method="x")

    def test_multimedia_beats_both_on_large_ring(self):
        graph = assign_distinct_weights(ring_graph(400), seed=1)
        inputs = {node: 1 for node in graph.nodes()}
        multimedia = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=3
        )
        p2p = compute_on_point_to_point_only(graph, INTEGER_ADDITION, inputs)
        channel = compute_on_channel_only(graph, INTEGER_ADDITION, inputs, seed=3)
        assert multimedia.value == p2p.value == channel.value == 400
        assert multimedia.total_rounds < p2p.rounds
        assert multimedia.total_rounds < channel.rounds
