"""Tests for the channel synchronizer (7.1) and slotted-from-unslotted (7.2)."""

import pytest

from repro.protocols.spanning.bfs import build_bfs_forest
from repro.protocols.spanning.broadcast_convergecast import TreeAggregationProtocol
from repro.protocols.spanning.tree_utils import children_map
from repro.sim.engine import EventQueue
from repro.sim.multimedia import MultimediaNetwork
from repro.sim.slotting import (
    UnslottedChannel,
    slotted_from_unslotted,
    verify_slot_semantics,
)
from repro.sim.synchronizer import ChannelSynchronizer
from repro.topology.generators import grid_graph


def _sum_inputs(graph, root):
    parents, _, _ = build_bfs_forest(graph, [root])
    children = children_map(parents)
    return {
        node: {
            "parent": parents[node],
            "children": tuple(children[node]),
            "value": 1,
            "combine": lambda a, b: a + b,
            "redistribute": True,
        }
        for node in graph.nodes()
    }


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5, lambda: seen.append("late"))
        queue.schedule(1, lambda: seen.append("early"))
        queue.run_all()
        assert seen == ["early", "late"]
        assert queue.now == 5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_run_until(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1, lambda: seen.append(1))
        queue.schedule(3, lambda: seen.append(3))
        queue.run_until(2)
        assert seen == [1]

    def test_fast_forward_jumps_event_free_stretch(self):
        queue = EventQueue()
        seen = []
        queue.schedule(10, lambda: seen.append(10))
        queue.fast_forward(9.0)
        assert queue.now == 9.0
        assert seen == []
        queue.run_all()
        assert seen == [10]

    def test_fast_forward_refuses_to_skip_events(self):
        queue = EventQueue()
        queue.schedule(2, lambda: None)
        with pytest.raises(ValueError):
            queue.fast_forward(2.0)

    def test_fast_forward_refuses_past(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.run_all()
        with pytest.raises(ValueError):
            queue.fast_forward(0.5)


class TestChannelSynchronizer:
    def test_same_result_as_synchronous_run(self):
        graph = grid_graph(4, 4)
        root = 0
        inputs = _sum_inputs(graph, root)
        sync = MultimediaNetwork(graph, seed=1).run(TreeAggregationProtocol, inputs=inputs)
        report = ChannelSynchronizer(graph, max_link_delay=4, seed=1).run(
            TreeAggregationProtocol, inputs=inputs
        )
        assert report.results[root] == sync.results[root] == 16
        assert all(value == 16 for value in report.results.values())

    def test_corollary4_message_overhead_at_most_two(self):
        graph = grid_graph(3, 3)
        inputs = _sum_inputs(graph, 0)
        report = ChannelSynchronizer(graph, max_link_delay=2, seed=3).run(
            TreeAggregationProtocol, inputs=inputs
        )
        assert report.ack_messages == report.algorithm_messages
        assert report.message_overhead_factor == pytest.approx(2.0)

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            ChannelSynchronizer(grid_graph(2, 2), max_link_delay=0)


class TestSlottedFromUnslotted:
    def test_disjoint_transmissions_become_successes(self):
        channel = UnslottedChannel()
        channel.transmit(1, "a", 0.0)
        channel.transmit(2, "b", 5.0)
        events = slotted_from_unslotted(channel)
        assert [e.state.value for e in events] == ["success", "success"]
        assert verify_slot_semantics(events)

    def test_overlapping_transmissions_collide(self):
        channel = UnslottedChannel()
        channel.transmit(1, "a", 0.0)
        channel.transmit(2, "b", 0.5)
        events = slotted_from_unslotted(channel)
        assert len(events) == 1
        assert events[0].is_collision()

    def test_guard_time_extends_slot(self):
        channel = UnslottedChannel()
        channel.transmit(1, "a", 0.0)
        channel.transmit(2, "b", 1.2)
        assert len(slotted_from_unslotted(channel, guard_time=0.0)) == 2
        assert len(slotted_from_unslotted(channel, guard_time=0.5)) == 1

    def test_number_by_time_counts_idle_gaps(self):
        channel = UnslottedChannel()
        channel.transmit(1, "a", 0.0)
        channel.transmit(2, "b", 5.5)
        dense = slotted_from_unslotted(channel)
        assert [e.slot for e in dense] == [0, 1]
        timed = slotted_from_unslotted(channel, number_by_time=True)
        # the first period ends at 1.0; 4 whole idle slots fit before 5.5
        assert [e.slot for e in timed] == [0, 5]
        assert timed[-1].slot + 1 - len(timed) == 4  # fast-forwarded idles
        assert verify_slot_semantics(timed)

    def test_number_by_time_counts_leading_idle(self):
        channel = UnslottedChannel()
        channel.transmit(1, "a", 3.25)
        (event,) = slotted_from_unslotted(channel, number_by_time=True)
        assert event.slot == 3

    def test_number_by_time_contiguous_matches_dense(self):
        channel = UnslottedChannel()
        channel.transmit(1, "a", 0.0)
        channel.transmit(2, "b", 1.0)
        channel.transmit(3, "c", 2.0)
        dense = slotted_from_unslotted(channel)
        timed = slotted_from_unslotted(channel, number_by_time=True)
        assert [e.slot for e in dense] == [e.slot for e in timed] == [0, 1, 2]

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            UnslottedChannel().transmit(1, "a", -1.0)

    def test_negative_guard_rejected(self):
        with pytest.raises(ValueError):
            slotted_from_unslotted(UnslottedChannel(), guard_time=-0.1)
