"""Worker-fault harness for the distributed executor backend.

The contract under test (see ``docs/architecture.md``, "Distributed
execution & serving"): a coordinator leases digest-checked shards to
workers, heartbeats keep leases alive, dead/hung workers' shards are
reassigned at least once, stale or corrupt submissions are rejected and
recomputed — and in every fault scenario the merged rows are bit-identical
to a clean serial run, because shards land as the same validated
checkpoints the sharded backend writes.

``FaultyWorker`` subclasses inject the faults at the
:meth:`~repro.experiments.distributed.ShardWorker.on_leased` seam (or by
overriding the compute/submit steps): SIGKILL mid-shard, hanging past the
lease, and corrupting the first submission.  Protocol-level scenarios
drive :meth:`~repro.experiments.distributed.ShardCoordinator.handle`
directly with a fake clock, so lease expiry and reassignment are
deterministic rather than timing-dependent.

Set ``REPRO_SKIP_DISTRIBUTED=1`` to skip the socket/process integration
tests on slow runners (the deterministic direct-handle tests always run).
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import random
import signal
import threading
import time

import pytest

from repro.experiments.distributed import (
    DistributedExecutor,
    DistributedProtocolError,
    ShardCoordinator,
    ShardWorker,
    run_worker,
    send_request,
)
from repro.experiments.executors import (
    ExecutorConfigError,
    ensure_manifest,
    make_executor,
    merge_checkpoints,
    shard_indices,
    sweep_digest,
    write_checkpoint,
)
from repro.experiments.registry import ExperimentSpec, get_experiment
from repro.experiments.runner import run_experiment
from repro.experiments.serialization import decode_wire, encode_wire

INTEGRATION = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_DISTRIBUTED") == "1",
    reason="REPRO_SKIP_DISTRIBUTED=1",
)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic lease expiry."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _noop_point(**kwargs):  # pragma: no cover - never executed
    raise AssertionError("synthetic spec points are submitted, not computed")


def synthetic_sweep(num_points: int, shard_count: int, run_dir):
    """A tiny synthetic sweep for protocol tests: no real compute needed."""
    spec = ExperimentSpec(
        id="prop",
        title="synthetic",
        columns=("i", "value"),
        point_fn=_noop_point,
        presets={"quick": {}, "default": {}, "hot": {}},
    )
    points = [{"i": index} for index in range(num_points)]
    digest = sweep_digest(spec.id, "quick", {}, num_points, shard_count)
    run_dir.mkdir(parents=True, exist_ok=True)
    ensure_manifest(run_dir, spec.id, "quick", {}, num_points, shard_count, digest)
    return spec, points, digest


def rows_for(indices):
    """The synthetic sweep's canonical rows for a shard's indices."""
    return [{"i": index, "value": index * 2} for index in indices]


def submit_message(worker, shard, digest, indices, rows):
    """A well-formed submit message (tests mutate copies to corrupt it)."""
    return {
        "op": "submit",
        "worker": worker,
        "shard": shard,
        "digest": digest,
        "indices": list(indices),
        "rows": encode_wire(rows),
        "compute_seconds": 0.001,
    }


# ----------------------------------------------------------------------
# wire codec: tuples and non-finite floats must survive the hop exactly
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_tuples_round_trip(self):
        value = {"sizes": (16, 36), "nested": ({"seeds": (1, 2)}, [3, (4,)])}
        assert decode_wire(encode_wire(value)) == value
        # and the encoded form is pure JSON
        json.dumps(encode_wire(value), allow_nan=False)

    def test_tuple_list_distinction_preserved(self):
        encoded = encode_wire({"t": (1, 2), "l": [1, 2]})
        decoded = decode_wire(encoded)
        assert isinstance(decoded["t"], tuple)
        assert isinstance(decoded["l"], list)

    def test_nonfinite_round_trip(self):
        value = [math.inf, -math.inf, {"x": math.inf}]
        decoded = decode_wire(json.loads(json.dumps(encode_wire(value))))
        assert decoded[0] == math.inf
        assert decoded[1] == -math.inf
        assert decoded[2]["x"] == math.inf

    def test_digest_agreement_after_round_trip(self):
        spec = get_experiment("e2")
        params = spec.params_for("quick")
        hopped = decode_wire(json.loads(json.dumps(encode_wire(params))))
        assert hopped == params
        points = spec.points(params)
        assert sweep_digest(spec.id, "quick", hopped, len(points), 2) == (
            sweep_digest(spec.id, "quick", params, len(points), 2)
        )


# ----------------------------------------------------------------------
# coordinator protocol: deterministic direct-handle scenarios
# ----------------------------------------------------------------------
class TestCoordinatorProtocol:
    def make(self, tmp_path, num_points=6, shard_count=3, lease_timeout=10.0):
        clock = FakeClock()
        run_dir = tmp_path / "run"
        spec, points, digest = synthetic_sweep(num_points, shard_count, run_dir)
        coordinator = ShardCoordinator(
            spec, "quick", {}, points, shard_count, digest, run_dir,
            lease_timeout=lease_timeout, clock=clock,
        )
        return coordinator, clock, digest, run_dir

    def drain(self, coordinator, digest, worker="w"):
        """Lease and correctly submit until the sweep is done."""
        for _ in range(100):
            reply = coordinator.handle({"op": "lease", "worker": worker})
            if reply["op"] == "done":
                return
            assert reply["op"] == "assign"
            outcome = coordinator.handle(
                submit_message(
                    worker, reply["shard"], digest, reply["indices"],
                    rows_for(reply["indices"]),
                )
            )
            assert outcome["op"] == "accepted"
        raise AssertionError("sweep did not converge")

    def test_happy_path_writes_all_checkpoints(self, tmp_path):
        coordinator, _, digest, run_dir = self.make(tmp_path)
        self.drain(coordinator, digest)
        assert coordinator.finished
        plan = shard_indices(6, 3)
        rows_by_index, _ = merge_checkpoints(run_dir, plan, ("i", "value"), digest)
        assert sorted(rows_by_index) == list(range(6))
        assert all(rows_by_index[i] == {"i": i, "value": i * 2} for i in range(6))

    def test_dead_worker_lease_expires_and_reassigns(self, tmp_path):
        coordinator, clock, digest, _ = self.make(
            tmp_path, num_points=2, shard_count=2, lease_timeout=5.0
        )
        first = coordinator.handle({"op": "lease", "worker": "doomed"})
        assert first["op"] == "assign"
        # the other worker drains the queue, then must wait on the lease
        second = coordinator.handle({"op": "lease", "worker": "healthy"})
        assert second["op"] == "assign"
        coordinator.handle(
            submit_message("healthy", second["shard"], digest,
                           second["indices"], rows_for(second["indices"]))
        )
        assert coordinator.handle({"op": "lease", "worker": "healthy"})["op"] == "wait"
        # the doomed worker never heartbeats: past the timeout the shard
        # comes back and the healthy worker finishes the sweep
        clock.advance(5.1)
        reassigned = coordinator.handle({"op": "lease", "worker": "healthy"})
        assert reassigned["op"] == "assign"
        assert reassigned["shard"] == first["shard"]
        assert coordinator.stats["reassigned"] == 1
        coordinator.handle(
            submit_message("healthy", reassigned["shard"], digest,
                           reassigned["indices"], rows_for(reassigned["indices"]))
        )
        assert coordinator.finished

    def test_heartbeat_extends_lease(self, tmp_path):
        coordinator, clock, digest, _ = self.make(
            tmp_path, num_points=1, shard_count=1, lease_timeout=5.0
        )
        lease = coordinator.handle({"op": "lease", "worker": "slow"})
        for _ in range(4):
            clock.advance(4.0)
            beat = coordinator.handle(
                {"op": "heartbeat", "worker": "slow", "shard": lease["shard"]}
            )
            assert beat["valid"] is True
        # 16 simulated seconds of heartbeat-extended work later, the
        # submission still lands on the original lease
        outcome = coordinator.handle(
            submit_message("slow", lease["shard"], digest, lease["indices"],
                           rows_for(lease["indices"]))
        )
        assert outcome == {"op": "accepted", "duplicate": False}
        assert coordinator.stats["reassigned"] == 0

    def test_heartbeat_invalid_after_reassignment(self, tmp_path):
        coordinator, clock, _, _ = self.make(
            tmp_path, num_points=1, shard_count=1, lease_timeout=5.0
        )
        lease = coordinator.handle({"op": "lease", "worker": "hung"})
        clock.advance(5.1)
        other = coordinator.handle({"op": "lease", "worker": "other"})
        assert other["shard"] == lease["shard"]
        late = coordinator.handle(
            {"op": "heartbeat", "worker": "hung", "shard": lease["shard"]}
        )
        assert late["valid"] is False

    def test_stale_digest_rejected_and_requeued(self, tmp_path):
        coordinator, _, digest, run_dir = self.make(
            tmp_path, num_points=2, shard_count=2
        )
        lease = coordinator.handle({"op": "lease", "worker": "stale"})
        message = submit_message("stale", lease["shard"], "0" * 64,
                                 lease["indices"], rows_for(lease["indices"]))
        outcome = coordinator.handle(message)
        assert outcome["op"] == "rejected"
        assert "digest" in outcome["reason"]
        # nothing reached the directory for that shard
        assert not (run_dir / f"shard-{lease['shard']:04d}.json").exists()
        # the shard went back to the queue and still completes
        self.drain(coordinator, digest)
        assert coordinator.finished
        assert coordinator.stats["rejected"] == 1

    def test_corrupt_rows_rejected(self, tmp_path):
        coordinator, _, digest, _ = self.make(tmp_path, num_points=2,
                                              shard_count=2)
        lease = coordinator.handle({"op": "lease", "worker": "corrupt"})
        bad_schema = submit_message(
            "corrupt", lease["shard"], digest, lease["indices"],
            [{"i": index} for index in lease["indices"]],  # missing "value"
        )
        assert coordinator.handle(bad_schema)["op"] == "rejected"
        wrong_count = submit_message(
            "corrupt", lease["shard"], digest, lease["indices"], []
        )
        # the first rejection returned the shard to the queue, so re-lease
        lease = coordinator.handle({"op": "lease", "worker": "corrupt"})
        wrong_count["shard"] = lease["shard"]
        wrong_count["indices"] = lease["indices"]
        assert coordinator.handle(wrong_count)["op"] == "rejected"
        wrong_indices = submit_message(
            "corrupt", lease["shard"], digest, [99], rows_for([99])
        )
        lease = coordinator.handle({"op": "lease", "worker": "corrupt"})
        wrong_indices["shard"] = lease["shard"]
        assert coordinator.handle(wrong_indices)["op"] == "rejected"
        self.drain(coordinator, digest)
        assert coordinator.finished

    def test_duplicate_submission_acknowledged_not_rewritten(self, tmp_path):
        coordinator, clock, digest, run_dir = self.make(
            tmp_path, num_points=1, shard_count=1, lease_timeout=5.0
        )
        lease = coordinator.handle({"op": "lease", "worker": "a"})
        clock.advance(5.1)
        release = coordinator.handle({"op": "lease", "worker": "b"})
        assert release["shard"] == lease["shard"]
        accept = coordinator.handle(
            submit_message("b", release["shard"], digest, release["indices"],
                           rows_for(release["indices"]))
        )
        assert accept == {"op": "accepted", "duplicate": False}
        # worker a finishes late with identical (deterministic) rows
        late = coordinator.handle(
            submit_message("a", lease["shard"], digest, lease["indices"],
                           rows_for(lease["indices"]))
        )
        assert late == {"op": "accepted", "duplicate": True}
        assert coordinator.stats["duplicates"] == 1
        assert coordinator.finished

    def test_unknown_and_malformed_ops_answer_errors(self, tmp_path):
        coordinator, _, _, _ = self.make(tmp_path)
        assert coordinator.handle({"op": "launch"})["op"] == "error"
        assert coordinator.handle({})["op"] == "error"
        out_of_range = coordinator.handle(
            submit_message("w", 99, "x", [0], rows_for([0]))
        )
        assert out_of_range["op"] == "rejected"

    def test_describe_round_trips_params(self, tmp_path):
        clock = FakeClock()
        run_dir = tmp_path / "run"
        spec = get_experiment("e2")
        params = spec.params_for("quick")
        points = spec.points(params)
        digest = sweep_digest(spec.id, "quick", params, len(points), 2)
        run_dir.mkdir()
        ensure_manifest(run_dir, spec.id, "quick", params, len(points), 2, digest)
        coordinator = ShardCoordinator(
            spec, "quick", params, points, 2, digest, run_dir, clock=clock
        )
        description = coordinator.handle({"op": "describe"})
        hopped = decode_wire(json.loads(json.dumps(description["params"])))
        assert hopped == params
        assert description["digest"] == digest


# ----------------------------------------------------------------------
# property-style: random layouts and kill schedules always converge to a
# disjoint cover, and the digest never admits a foreign checkpoint
# ----------------------------------------------------------------------
class TestShardProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_kill_schedules_converge_to_disjoint_cover(
        self, seed, tmp_path
    ):
        rng = random.Random(seed)
        num_points = rng.randint(1, 12)
        shard_count = rng.randint(1, 8)
        worker_count = rng.randint(1, 4)
        clock = FakeClock()
        run_dir = tmp_path / "run"
        spec, points, digest = synthetic_sweep(num_points, shard_count, run_dir)
        coordinator = ShardCoordinator(
            spec, "quick", {}, points, shard_count, digest, run_dir,
            lease_timeout=5.0, clock=clock,
        )
        workers = [f"w{index}" for index in range(worker_count)]
        for _ in range(2000):
            if coordinator.finished:
                break
            worker = rng.choice(workers)
            reply = coordinator.handle({"op": "lease", "worker": worker})
            if reply["op"] == "wait":
                clock.advance(rng.uniform(0.5, 6.0))
                continue
            if reply["op"] == "done":
                break
            assert reply["op"] == "assign"
            fate = rng.random()
            if fate < 0.25:
                # the worker dies mid-shard: never submits, never beats
                clock.advance(rng.uniform(0.0, 8.0))
            elif fate < 0.35:
                # the worker submits garbage once (stale digest)
                coordinator.handle(
                    submit_message(worker, reply["shard"], "f" * 64,
                                   reply["indices"],
                                   rows_for(reply["indices"]))
                )
            else:
                coordinator.handle(
                    submit_message(worker, reply["shard"], digest,
                                   reply["indices"],
                                   rows_for(reply["indices"]))
                )
            clock.advance(rng.uniform(0.0, 1.0))
        assert coordinator.finished, (
            f"seed {seed}: layout {num_points}/{shard_count} never converged"
        )
        # the completed checkpoint files are a disjoint cover of the sweep
        plan = shard_indices(num_points, shard_count)
        seen = []
        for shard in range(shard_count):
            data = json.loads((run_dir / f"shard-{shard:04d}.json").read_text())
            assert data["digest"] == digest
            assert data["indices"] == plan[shard]
            seen.extend(data["indices"])
        assert sorted(seen) == list(range(num_points))
        rows_by_index, _ = merge_checkpoints(run_dir, plan, ("i", "value"), digest)
        assert [rows_by_index[i] for i in sorted(rows_by_index)] == rows_for(
            range(num_points)
        )

    def test_foreign_checkpoint_never_admitted(self, tmp_path):
        run_dir = tmp_path / "run"
        spec, points, digest = synthetic_sweep(4, 2, run_dir)
        plan = shard_indices(4, 2)
        # shard 0: genuine; shard 1: a checkpoint from some *other* sweep
        # (same shape, different digest) planted in the directory
        write_checkpoint(run_dir, 0, 2, plan[0], rows_for(plan[0]), 0.1, digest)
        write_checkpoint(run_dir, 1, 2, plan[1], rows_for(plan[1]), 0.1, "e" * 64)
        rows_by_index, _ = merge_checkpoints(run_dir, plan, ("i", "value"), digest)
        assert sorted(rows_by_index) == plan[0]
        # ... and a coordinator resuming this directory re-queues shard 1
        clock = FakeClock()
        completed = tuple(
            shard for shard in range(2)
            if merge_checkpoints(run_dir, plan, ("i", "value"), digest,
                                 )[0].keys() >= set(plan[shard])
        )
        coordinator = ShardCoordinator(
            spec, "quick", {}, points, 2, digest, run_dir,
            completed=completed, clock=clock,
        )
        reply = coordinator.handle({"op": "lease", "worker": "w"})
        assert reply["op"] == "assign"
        assert reply["shard"] == 1


# ----------------------------------------------------------------------
# executor configuration surface
# ----------------------------------------------------------------------
class TestDistributedConfig:
    def test_make_executor_builds_distributed(self):
        backend = make_executor("distributed", workers=3, lease_timeout=7.0)
        assert isinstance(backend, DistributedExecutor)
        assert backend.workers == 3
        assert backend.lease_timeout == 7.0
        assert backend.name == "distributed"

    def test_defaults_apply_when_unset(self):
        backend = make_executor("distributed")
        assert backend.workers == DistributedExecutor.workers
        assert backend.lease_timeout == DistributedExecutor.lease_timeout

    def test_distributed_rejects_sharded_options(self):
        with pytest.raises(ValueError):
            make_executor("distributed", shard=(0, 2))
        with pytest.raises(ValueError):
            make_executor("distributed", max_shards=2)
        with pytest.raises(ValueError):
            make_executor("distributed", processes=4)

    def test_worker_options_rejected_on_other_backends(self):
        for name in ("serial", "process", "sharded"):
            with pytest.raises(ValueError):
                make_executor(name, workers=2)

    def test_executor_validates_its_own_config(self):
        spec = get_experiment("e2")
        params = spec.params_for("quick")
        points = spec.points(params)
        with pytest.raises(ExecutorConfigError):
            DistributedExecutor(workers=0).execute(spec, "quick", params, points)
        with pytest.raises(ExecutorConfigError):
            DistributedExecutor(lease_timeout=0.0).execute(
                spec, "quick", params, points
            )
        with pytest.raises(ExecutorConfigError):
            DistributedExecutor(spawn_workers=False).execute(
                spec, "quick", params, points
            )

    def test_runner_rejects_worker_options_with_instance(self):
        from repro.experiments.executors import SerialExecutor

        with pytest.raises(ValueError, match="workers"):
            run_experiment("e2", preset="quick", executor=SerialExecutor(),
                           workers=2)


# ----------------------------------------------------------------------
# worker backoff: a vanished coordinator terminates the worker cleanly
# ----------------------------------------------------------------------
class TestWorkerBackoff:
    def test_unreachable_coordinator_raises_after_backoff(self):
        # bind-then-close guarantees a dead port
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = ShardWorker(
            ("127.0.0.1", port), backoff_base=0.01, backoff_cap=0.02,
            max_attempts=3, request_timeout=0.2,
        )
        start = time.perf_counter()
        with pytest.raises(DistributedProtocolError, match="unreachable"):
            worker.run()
        # three attempts with backoff between them actually waited
        assert time.perf_counter() - start >= 0.02


# ----------------------------------------------------------------------
# socket/process integration: real workers, real faults
# ----------------------------------------------------------------------
def _run_faulty(worker):
    """Run a worker thread, swallowing the protocol error raised when the
    coordinator is stopped before the worker observes ``done``."""
    try:
        worker.run()
    except DistributedProtocolError:
        pass


class HangingWorker(ShardWorker):
    """Hangs (without heartbeating) past the lease on its first shard."""

    def __init__(self, *args, hang_seconds=1.5, **kwargs):
        super().__init__(*args, **kwargs)
        self.hang_seconds = hang_seconds
        self.hung = False

    def on_leased(self, shard):
        if not self.hung:
            self.hung = True
            time.sleep(self.hang_seconds)


class CorruptingWorker(ShardWorker):
    """Submits a schema-corrupt payload for its first shard, then behaves."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.corrupted = False

    def _compute(self, spec, points, indices, shard, interval):
        rows, elapsed = super()._compute(spec, points, indices, shard, interval)
        if not self.corrupted:
            self.corrupted = True
            rows = [{key: row[key] for key in list(row)[:1]} for row in rows]
        return rows, elapsed


def _suicide_worker_main(host, port):
    """Process target: lease one shard, then SIGKILL ourselves mid-shard."""

    class _Suicide(ShardWorker):
        def on_leased(self, shard):
            os.kill(os.getpid(), signal.SIGKILL)

    _Suicide((host, port), heartbeat_interval=60.0).run()


def _real_sweep(tmp_path, experiment="e2", overrides=None, lease_timeout=1.0):
    """A real quick sweep's coordinator (bound, not yet serving)."""
    spec = get_experiment(experiment)
    params = spec.params_for("quick", overrides)
    points = spec.points(params)
    count = len(points)
    digest = sweep_digest(spec.id, "quick", params, count, count)
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    ensure_manifest(run_dir, spec.id, "quick", params, count, count, digest)
    coordinator = ShardCoordinator(
        spec, "quick", params, points, count, digest, run_dir,
        lease_timeout=lease_timeout,
    )
    return spec, params, points, digest, run_dir, coordinator


def _merged_rows(run_dir, spec, points, digest):
    plan = shard_indices(len(points), len(points))
    rows_by_index, _ = merge_checkpoints(run_dir, plan, spec.columns, digest)
    assert sorted(rows_by_index) == list(range(len(points)))
    return [rows_by_index[i] for i in sorted(rows_by_index)]


def _await(coordinator, timeout=60.0):
    deadline = time.monotonic() + timeout
    while not coordinator.finished:
        coordinator.reap()
        assert time.monotonic() < deadline, "sweep did not converge in time"
        time.sleep(0.05)


@INTEGRATION
class TestExecutorBitIdentity:
    def test_e2_matches_serial(self, tmp_path):
        serial = run_experiment("e2", preset="quick")
        result = run_experiment("e2", preset="quick", workers=2,
                                run_dir=tmp_path / "run")
        assert result.rows == serial.rows
        assert result.executor == "distributed"
        assert result.pending_points == 0

    def test_e4_random_stream_matches_serial(self, tmp_path):
        serial = run_experiment("e4", preset="quick")
        result = run_experiment("e4", preset="quick", executor="distributed",
                                workers=2, run_dir=tmp_path / "run")
        assert result.rows == serial.rows

    def test_adversity_sweep_matches_serial(self, tmp_path):
        overrides = {"adversity": "loss"}
        serial = run_experiment("e7", preset="quick", overrides=overrides)
        result = run_experiment("e7", preset="quick", overrides=overrides,
                                workers=2, run_dir=tmp_path / "run")
        assert result.rows == serial.rows

    def test_resume_reuses_checkpoints(self, tmp_path):
        serial = run_experiment("e2", preset="quick")
        spec, params, points, digest, run_dir, _ = _real_sweep(tmp_path)
        # one shard is already on disk from an earlier (interrupted) run
        plan = shard_indices(len(points), len(points))
        from repro.experiments.executors import execute_point

        write_checkpoint(run_dir, 0, len(points), plan[0],
                         [execute_point(spec, points[i]) for i in plan[0]],
                         0.5, digest)
        result = run_experiment("e2", preset="quick", workers=2, resume=True,
                                run_dir=run_dir)
        assert result.rows == serial.rows
        # the pre-existing shard's compute time was merged, not recomputed
        assert result.wall_seconds >= 0.5


@INTEGRATION
class TestWorkerFaults:
    def test_sigkilled_worker_shard_is_reassigned(self, tmp_path):
        serial = run_experiment("e2", preset="quick")
        spec, _, points, digest, run_dir, coordinator = _real_sweep(
            tmp_path, lease_timeout=0.75
        )
        host, port = coordinator.bind()
        ctx = multiprocessing.get_context("spawn")
        victim = ctx.Process(target=_suicide_worker_main, args=(host, port),
                             daemon=True)
        victim.start()
        coordinator.start()
        try:
            victim.join(timeout=60.0)
            assert victim.exitcode == -signal.SIGKILL
            healthy = ctx.Process(target=run_worker, args=(host, port),
                                  daemon=True)
            healthy.start()
            _await(coordinator)
            healthy.join(timeout=30.0)
        finally:
            coordinator.stop()
        assert coordinator.stats["reassigned"] >= 1
        assert _merged_rows(run_dir, spec, points, digest) == serial.rows

    def test_hanging_worker_shard_is_reassigned(self, tmp_path):
        serial = run_experiment("e2", preset="quick")
        spec, _, points, digest, run_dir, coordinator = _real_sweep(
            tmp_path, lease_timeout=0.4
        )
        host, port = coordinator.start()
        hanging = HangingWorker((host, port), hang_seconds=1.2,
                                heartbeat_interval=60.0)
        hang_thread = threading.Thread(target=_run_faulty, args=(hanging,),
                                       daemon=True)
        hang_thread.start()
        # wait until the hanging worker actually holds a lease before the
        # healthy worker joins, so the fault deterministically occurs
        deadline = time.monotonic() + 30.0
        while coordinator.progress[1] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        healthy = ShardWorker((host, port))
        healthy_thread = threading.Thread(target=_run_faulty, args=(healthy,),
                                          daemon=True)
        healthy_thread.start()
        try:
            _await(coordinator)
            # let the hung worker wake up and submit its (duplicate) shard
            hang_thread.join(timeout=30.0)
            healthy_thread.join(timeout=30.0)
        finally:
            coordinator.stop()
        assert coordinator.stats["reassigned"] >= 1
        assert _merged_rows(run_dir, spec, points, digest) == serial.rows

    def test_corrupting_worker_retries_and_converges(self, tmp_path):
        serial = run_experiment("e2", preset="quick")
        spec, _, points, digest, run_dir, coordinator = _real_sweep(tmp_path)
        host, port = coordinator.start()
        worker = CorruptingWorker((host, port))
        thread = threading.Thread(target=_run_faulty, args=(worker,),
                                  daemon=True)
        thread.start()
        try:
            _await(coordinator)
            thread.join(timeout=30.0)
        finally:
            coordinator.stop()
        assert coordinator.stats["rejected"] >= 1
        assert _merged_rows(run_dir, spec, points, digest) == serial.rows

    def test_worker_code_skew_refused(self, tmp_path):
        # the worker re-expands the sweep with its *own* code; when that
        # expansion disagrees with the coordinator's (a drifted checkout),
        # the recomputed identity no longer matches and the worker refuses
        # before computing anything
        spec, params, points, digest, run_dir, coordinator = _real_sweep(
            tmp_path
        )
        host, port = coordinator.start()

        class SkewedWorker(ShardWorker):
            def resolve_spec(self, experiment_id):
                real = get_experiment(experiment_id)

                def drifted_points(resolved):
                    return real.points(resolved) + [{"n": 999}]

                return ExperimentSpec(
                    id=real.id, title=real.title, columns=real.columns,
                    point_fn=real.point_fn, presets=real.presets,
                    topologies=real.topologies,
                    adversities=real.adversities,
                    points_fn=drifted_points,
                )

        try:
            with pytest.raises(DistributedProtocolError, match="digest"):
                SkewedWorker((host, port)).run()
        finally:
            coordinator.stop()

    def test_send_request_round_trip_over_socket(self, tmp_path):
        _, _, _, digest, _, coordinator = _real_sweep(tmp_path)
        address = coordinator.start()
        try:
            description = send_request(address, {"op": "describe"})
            assert description["op"] == "sweep"
            assert description["digest"] == digest
            error = send_request(address, {"op": "nonsense"})
            assert error["op"] == "error"
        finally:
            coordinator.stop()
