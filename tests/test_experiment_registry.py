"""Tests for the declarative experiment layer: registry, runner, CLI, trajectory.

Covers the acceptance criteria of the spec-registry refactor: every
experiment e1–e11 is registered with valid presets, the unified runner
produces structured rows that render to the historical tables and round-trip
through JSON, process-pool execution is bit-identical to serial execution,
and the ``python -m repro`` CLI exposes ``list``/``run``/``bench``.
"""

import json

import pytest

from repro import cli
from repro.analysis.reporting import table_from_records
from repro.experiments import registry
from repro.experiments.registry import (
    REQUIRED_PRESETS,
    all_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.trajectory import suite_entries

EXPECTED_IDS = [f"e{i}" for i in range(1, 14)]


class TestRegistryCompleteness:
    def test_all_experiments_registered(self):
        assert [spec.id for spec in all_experiments()] == EXPECTED_IDS

    def test_every_spec_has_required_presets(self):
        for spec in all_experiments():
            for preset in REQUIRED_PRESETS:
                params = spec.params_for(preset)
                points = spec.points(params)
                assert points, f"{spec.id}/{preset} expands to no points"

    def test_every_spec_declares_columns_and_description(self):
        for spec in all_experiments():
            assert spec.columns
            assert spec.description

    def test_quick_points_match_columns(self):
        # one real sweep point per experiment: the row keys must equal the
        # declared schema (order included — rendering relies on it)
        for spec in all_experiments():
            point = spec.points(spec.params_for("quick"))[0]
            row = spec.point_fn(**point)
            assert list(row) == list(spec.columns), spec.id

    def test_bench_variants_reference_known_presets(self):
        for spec in all_experiments():
            for variant in spec.bench_extras + spec.quick_extras:
                assert variant.preset in spec.presets
                # overrides must resolve cleanly
                spec.params_for(variant.preset, variant.overrides)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("e99")

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="no preset"):
            get_experiment("e1").params_for("warm")

    def test_unsupported_topology_raises(self):
        with pytest.raises(ValueError, match="does not support topology"):
            get_experiment("e1").params_for("quick", {"topology": "hyperloop"})

    def test_scalar_override_of_sequence_parameter_is_coerced(self):
        params = get_experiment("e1").params_for("quick", {"sizes": 64})
        assert params["sizes"] == (64,)
        params = get_experiment("e3").params_for("quick", {"seeds": 7})
        assert params["seeds"] == (7,)

    def test_unknown_override_key_raises(self):
        # e1 is deterministic: it has no seeds parameter to override
        with pytest.raises(ValueError, match="does not accept parameter"):
            get_experiment("e1").params_for("quick", {"seeds": (1,)})
        # e8 sweeps ray-graph shapes, not sizes — a sizes override must not
        # be silently ignored
        with pytest.raises(ValueError, match="does not accept parameter"):
            get_experiment("e8").params_for("quick", {"sizes": (999,)})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment(
                id="e1",
                title="dup",
                columns=("n",),
                presets={name: {"sizes": (4,)} for name in REQUIRED_PRESETS},
            )(lambda n: {"n": n})

    def test_reimport_of_same_module_keeps_first_registration(self):
        # executing an eNN module as a script registers its spec under
        # __main__; load_all() then imports the same file as the package
        # module — the second registration must be a no-op, not an error
        spec = get_experiment("e1")
        redecorated = register_experiment(
            id="e1",
            title="dup from re-import",
            columns=spec.columns,
            presets=spec.presets,
        )(spec.point_fn)
        assert get_experiment("e1") is spec
        assert redecorated.spec is spec

    def test_missing_preset_rejected(self):
        with pytest.raises(ValueError, match="missing preset"):
            register_experiment(
                id="e_tmp_missing_preset",
                title="tmp",
                columns=("n",),
                presets={"quick": {"sizes": (4,)}},
            )(lambda n: {"n": n})
        assert "e_tmp_missing_preset" not in registry._REGISTRY


class TestRunner:
    def test_rows_render_to_table(self):
        result = run_experiment("e1", preset="quick")
        table = result.to_table()
        assert table.columns == list(result.columns)
        assert len(table.rows) == len(result.rows)
        rendered = table.render()
        assert "E1" in rendered

    def test_row_schema_mismatch_is_rejected(self):
        spec = get_experiment("e1")
        with pytest.raises(ValueError, match="columns"):
            register_experiment(
                id="e_tmp_bad_row",
                title="tmp",
                columns=("n", "extra"),
                presets={name: {"sizes": (4,)} for name in REQUIRED_PRESETS},
            )(lambda n: {"n": n})
            run_experiment("e_tmp_bad_row", preset="quick")
        registry._REGISTRY.pop("e_tmp_bad_row", None)
        assert spec is get_experiment("e1")

    def test_json_round_trip(self):
        result = run_experiment("e8", preset="quick")
        clone = ExperimentResult.from_json(result.to_json())
        assert clone.experiment_id == result.experiment_id
        assert clone.title == result.title
        assert list(clone.columns) == list(result.columns)
        assert clone.rows == json.loads(json.dumps(result.rows))
        assert clone.to_table().render() == result.to_table().render()

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            ExperimentResult.from_json_dict({"schema": 99})

    def test_to_json_is_strict_for_non_finite_floats(self):
        result = ExperimentResult(
            experiment_id="e10",
            title="t",
            columns=("n", "GL_error_factor"),
            rows=[{"n": 4, "GL_error_factor": float("inf")}],
        )
        text = result.to_json()
        assert "Infinity" not in text
        assert json.loads(text)["rows"][0]["GL_error_factor"] == "inf"

    def test_parallel_is_bit_identical_to_serial(self):
        for experiment_id in ("e3", "e9"):
            serial = run_experiment(experiment_id, preset="quick")
            parallel = run_experiment(experiment_id, preset="quick", processes=2)
            assert parallel.rows == serial.rows
            assert parallel.to_table().render() == serial.to_table().render()

    def test_serial_run_honours_an_unregistered_spec_object(self):
        from repro.experiments.registry import ExperimentSpec

        spec = ExperimentSpec(
            id="custom-unregistered",
            title="custom",
            columns=("n",),
            point_fn=lambda n: {"n": n},
            presets={name: {"sizes": (2, 3)} for name in REQUIRED_PRESETS},
        )
        result = run_experiment(spec, preset="quick")
        assert result.rows == [{"n": 2}, {"n": 3}]

    def test_table_from_records_checks_columns(self):
        table = table_from_records("t", ("a", "b"), [{"a": 1, "b": 2}])
        assert table.rows == [[1, 2]]
        with pytest.raises(KeyError):
            table_from_records("t", ("a", "b"), [{"a": 1}])


class TestTrajectorySuite:
    def test_suite_covers_every_experiment(self):
        names = [entry.name for entry in suite_entries(quick=False)]
        for experiment_id in EXPECTED_IDS:
            assert experiment_id in names
        # the historical hot/topology variants stay present under their
        # recorded BENCH_core.json names
        for name in ("e2_hot", "e4_hot", "e9_hot",
                     "e7_scale_free_hot", "e7_ad_hoc_hot", "e7_baseline_hot",
                     "e10_scale_free"):
            assert name in names
        assert len(names) == len(set(names))

    def test_quick_suite_covers_every_experiment(self):
        names = [entry.name for entry in suite_entries(quick=True)]
        for experiment_id in EXPECTED_IDS:
            assert experiment_id in names
        for name in ("e7_scale_free", "e7_ad_hoc", "e7_baseline",
                     "e10_scale_free"):
            assert name in names
        assert len(names) == len(set(names))

    def test_e7_baseline_variants_measure_the_baseline(self):
        by_name = {entry.name: entry for entry in suite_entries(quick=False)}
        assert by_name["e7_baseline_hot"].overrides["channel_baseline"] is True
        quick = {entry.name: entry for entry in suite_entries(quick=True)}
        assert quick["e7_baseline"].overrides["channel_baseline"] is True


class TestCli:
    def test_list_shows_all_experiments(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPECTED_IDS:
            assert f"{experiment_id:>4}  " in out

    def test_list_json(self, capsys):
        assert cli.main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["id"] for entry in payload] == EXPECTED_IDS
        assert all(set(REQUIRED_PRESETS) <= set(entry["presets"]) for entry in payload)

    def test_run_renders_table(self, capsys):
        assert cli.main(["run", "e1", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "all_bounds_hold" in out

    def test_run_json_round_trip(self, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = cli.main([
            "run", "e7", "--preset", "quick", "--topology", "grid",
            "--set", "channel_baseline=False", "--json", str(output),
        ])
        assert code == 0
        capsys.readouterr()
        loaded = ExperimentResult.from_json(output.read_text())
        direct = run_experiment(
            "e7", preset="quick",
            overrides={"topology": "grid", "channel_baseline": False},
        )
        assert loaded.rows == json.loads(json.dumps(direct.rows))
        assert loaded.to_table().render() == direct.to_table().render()

    def test_run_overrides_sizes_and_seeds(self, capsys):
        assert cli.main(["run", "e3", "--sizes", "16", "--seeds", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 5  # title + rules + header + one row

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert cli.main(["run", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown_preset_fails_cleanly(self, capsys):
        assert cli.main(["run", "e1", "--preset", "warm"]) == 2
        assert "no preset" in capsys.readouterr().err

    def test_run_unknown_override_fails_cleanly(self, capsys):
        assert cli.main(["run", "e1", "--seeds", "1"]) == 2
        assert "does not accept parameter" in capsys.readouterr().err
        assert cli.main(["run", "e1", "--set", "bogus=1"]) == 2
        assert "does not accept parameter" in capsys.readouterr().err

    def test_bench_quick_only_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli.main(["bench", "--quick", "--only", "e1"]) == 0
        out = capsys.readouterr().out
        assert "trajectory file left untouched" in out
        assert list(tmp_path.iterdir()) == []

    def test_bench_rejects_unknown_entry(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["bench", "--quick", "--only", "e99"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_set_scalar_sequence_value(self, capsys):
        assert cli.main(["run", "e1", "--set", "sizes=16"]) == 0
        out = capsys.readouterr().out
        assert "16" in out

    def test_bench_only_merges_into_existing_label(self, capsys, tmp_path):
        output = tmp_path / "traj.json"
        argv = ["bench", "--quick", "--label", "t", "--output", str(output)]
        assert cli.main(argv + ["--only", "e1", "--note", "first"]) == 0
        assert cli.main(argv + ["--only", "e8"]) == 0
        capsys.readouterr()
        run = json.loads(output.read_text())["runs"]["t"]
        # the e8 re-run must not wipe the previously recorded e1 entry, nor
        # the label's stored note
        assert {"e1", "e8"} <= set(run["experiments"])
        assert run["note"] == "first"

    def test_bench_only_probes_do_not_clobber_stored_sweeps(self, capsys, tmp_path):
        output = tmp_path / "traj.json"
        argv = ["bench", "--label", "t", "--output", str(output)]
        # record a full e2 sweep entry (probes disabled)
        assert cli.main(argv + ["--only", "e2", "--probe-budget", "0"]) == 0
        # a targeted e1 refresh whose max-n probes also touch e2/e4/e9
        assert cli.main(argv + ["--only", "e1", "--probe-budget", "0.01"]) == 0
        capsys.readouterr()
        recorded = json.loads(output.read_text())["runs"]["t"]["experiments"]
        # the probe fields merge into the stored e2 sweep instead of
        # replacing it with a probe-only dict
        assert "wall_seconds" in recorded["e2"]
        assert "max_feasible_n" in recorded["e2"]


class FakeClock:
    """Scripted ``perf_counter``: each run's elapsed time is read off a list."""

    def __init__(self, elapsed):
        self._elapsed = iter(elapsed)
        self._now = 0.0
        self._pending = None

    def __call__(self):
        if self._pending is None:
            self._pending = next(self._elapsed)
            return self._now
        self._now += self._pending
        self._pending = None
        return self._now


class TestMaxFeasibleProbe:
    """The probe's boundary decision must not flap on one-sided host noise."""

    def _run_probe(self, monkeypatch, elapsed, budget=2.0):
        from repro.experiments import trajectory

        calls = []
        monkeypatch.setattr(trajectory.time, "perf_counter", FakeClock(elapsed))
        result = trajectory._probe(calls.append, start_n=64, budget=budget)
        return result, calls

    def test_single_overshoot_near_boundary_is_retimed(self, monkeypatch):
        # n=64 fits (1.0); n=128's first timing is a noise spike (2.5) but
        # the re-timing fits (1.9); n=256 overshoots on all three timings
        result, calls = self._run_probe(
            monkeypatch, [1.0, 2.5, 1.9, 3.0, 3.0, 3.0]
        )
        assert result["max_feasible_n"] == 128
        assert result["seconds_at_max"] == 1.9
        assert calls == [64, 128, 128, 256, 256, 256]

    def test_fitting_sizes_cost_one_run(self, monkeypatch):
        # no overshoots until the final size: every fitting size is timed
        # exactly once, and the gross terminal overshoot (>= 2x budget) is
        # conclusive on a single run
        result, calls = self._run_probe(monkeypatch, [1.0, 1.5, 4.0])
        assert result["max_feasible_n"] == 128
        assert calls == [64, 128, 256]

    def test_consistent_overshoot_stops_after_bounded_retries(self, monkeypatch):
        # overshoots inside the jitter window (budget..2x budget) are
        # re-timed up to the retry bound before declaring infeasibility
        result, calls = self._run_probe(monkeypatch, [3.0, 3.0, 3.0])
        assert result["max_feasible_n"] is None
        assert result["seconds_at_max"] is None
        assert calls == [64, 64, 64]

    def test_gross_overshoot_is_conclusive_on_one_run(self, monkeypatch):
        # host jitter does not double a runtime: a first timing at or above
        # 2x budget ends the size without burning two more over-budget runs
        result, calls = self._run_probe(monkeypatch, [1.0, 5.0])
        assert result["max_feasible_n"] == 64
        assert calls == [64, 128]

    def test_minimum_of_timings_is_recorded(self, monkeypatch):
        # the recorded seconds are the minimum timing, not the first
        result, _ = self._run_probe(monkeypatch, [2.4, 2.2, 1.8, 9.0, 9.0, 9.0])
        assert result["max_feasible_n"] == 64
        assert result["seconds_at_max"] == 1.8


class TestDocsCatalog:
    def test_markdown_is_deterministic_and_covers_every_spec(self):
        from repro.experiments.catalog import experiments_markdown

        first = experiments_markdown()
        assert first == experiments_markdown()
        for experiment_id in EXPECTED_IDS:
            assert f"## {experiment_id} — " in first
        # the catalog documents the presets and the new baseline variants
        assert "| `quick` |" in first and "| `hot` |" in first
        assert "`e7_baseline_hot`" in first and "`e7_baseline`" in first

    def test_committed_catalog_is_fresh(self):
        # the same check the CI docs-freshness job runs: the committed
        # docs/experiments.md must match what the registry generates now
        from repro.experiments.catalog import default_docs_dir, stale_docs

        assert stale_docs(default_docs_dir()) == []

    def test_cli_docs_writes_and_checks(self, tmp_path, capsys):
        docs_dir = tmp_path / "docs"
        assert cli.main(["docs", "--output-dir", str(docs_dir)]) == 0
        generated = docs_dir / "experiments.md"
        assert generated.exists()
        capsys.readouterr()
        assert cli.main(["docs", "--output-dir", str(docs_dir), "--check"]) == 0
        capsys.readouterr()
        generated.write_text(generated.read_text() + "drift\n")
        assert cli.main(["docs", "--output-dir", str(docs_dir), "--check"]) == 1
        assert "stale" in capsys.readouterr().err

    def test_cli_docs_check_missing_file_fails(self, tmp_path, capsys):
        assert cli.main(
            ["docs", "--output-dir", str(tmp_path / "nowhere"), "--check"]
        ) == 1
        assert "stale" in capsys.readouterr().err
