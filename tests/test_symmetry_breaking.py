"""Tests for Cole–Vishkin, GPS 3-colouring and the MIS recolouring."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.symmetry.cole_vishkin import (
    cole_vishkin_step,
    color_bit_length,
    colors_after_step,
    log_star,
    steps_to_constant,
)
from repro.protocols.symmetry.mis import (
    mis_from_three_coloring,
    is_independent_set,
    is_maximal_independent_set,
)
from repro.protocols.symmetry.three_coloring import (
    is_legal_coloring,
    three_color_rooted_forest,
)


def random_rooted_forest(num_nodes: int, seed: int, num_roots: int = 1):
    """Return a random rooted forest as a parent map over 0..num_nodes-1."""
    rng = random.Random(seed)
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    parents = {}
    roots = nodes[:num_roots]
    for root in roots:
        parents[root] = None
    for index in range(num_roots, num_nodes):
        parents[nodes[index]] = nodes[rng.randrange(index)]
    return parents


forest_strategy = st.builds(
    random_rooted_forest,
    num_nodes=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=10_000),
    num_roots=st.integers(min_value=1, max_value=4),
).map(lambda parents: parents)


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            log_star(0)


class TestColeVishkin:
    def test_single_step_reduces_colors_and_stays_legal(self):
        parents = {i: (None if i == 0 else i - 1) for i in range(50)}
        colors = {i: i for i in range(50)}
        new_colors = cole_vishkin_step(colors, parents, num_colors=50)
        assert is_legal_coloring(new_colors, parents)
        assert max(new_colors.values()) < 2 * color_bit_length(50)

    def test_illegal_input_detected(self):
        parents = {0: None, 1: 0}
        with pytest.raises(ValueError):
            cole_vishkin_step({0: 3, 1: 3}, parents, num_colors=4)

    def test_colors_after_step(self):
        assert colors_after_step(1024) == 20
        assert colors_after_step(6) == 6

    def test_steps_to_constant_is_log_star_like(self):
        assert steps_to_constant(2 ** 16) <= log_star(2 ** 16) + 3


class TestThreeColoring:
    def test_path_gets_three_colors(self):
        parents = {i: (None if i == 0 else i - 1) for i in range(100)}
        result = three_color_rooted_forest(parents)
        assert is_legal_coloring(result.colors, parents)
        assert set(result.colors.values()) <= {0, 1, 2}
        assert result.communication_rounds <= log_star(100) + 6

    def test_star_gets_two_colors_effectively(self):
        parents = {0: None}
        parents.update({i: 0 for i in range(1, 30)})
        result = three_color_rooted_forest(parents)
        assert is_legal_coloring(result.colors, parents)

    def test_duplicate_identifiers_rejected(self):
        parents = {0: None, 1: 0}
        with pytest.raises(ValueError):
            three_color_rooted_forest(parents, identifiers={0: 5, 1: 5})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            three_color_rooted_forest({0: 1, 1: 0})

    def test_empty_forest(self):
        result = three_color_rooted_forest({})
        assert result.colors == {}

    @given(forest_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_coloring_always_legal_and_three(self, parents):
        result = three_color_rooted_forest(parents)
        assert is_legal_coloring(result.colors, parents)
        assert set(result.colors.values()) <= {0, 1, 2}


class TestMIS:
    def test_mis_on_path_contains_root(self):
        parents = {i: (None if i == 0 else i - 1) for i in range(40)}
        coloring = three_color_rooted_forest(parents)
        result = mis_from_three_coloring(parents, coloring.colors)
        assert 0 in result.independent_set
        assert is_maximal_independent_set(parents, result.independent_set)

    def test_rejects_illegal_coloring(self):
        parents = {0: None, 1: 0}
        with pytest.raises(ValueError):
            mis_from_three_coloring(parents, {0: 1, 1: 1})

    def test_rejects_out_of_range_colors(self):
        parents = {0: None, 1: 0}
        with pytest.raises(ValueError):
            mis_from_three_coloring(parents, {0: 4, 1: 1})

    def test_is_independent_set_helper(self):
        parents = {0: None, 1: 0, 2: 1}
        assert is_independent_set(parents, {0, 2})
        assert not is_independent_set(parents, {0, 1})
        assert not is_maximal_independent_set(parents, {0})

    @given(forest_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_mis_contains_all_roots_and_is_maximal(self, parents):
        coloring = three_color_rooted_forest(parents)
        result = mis_from_three_coloring(parents, coloring.colors)
        roots = {node for node, parent in parents.items() if parent is None}
        assert roots <= result.independent_set
        assert is_maximal_independent_set(parents, result.independent_set)
        # the MIS property the partition relies on: any vertex is within
        # distance ≤ 1 of the MIS, hence red-to-red paths are short
        assert is_independent_set(parents, result.independent_set)
