"""End-to-end integration tests combining several subsystems at once."""

import math

from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION, INTEGER_MINIMUM
from repro.core.mst.kruskal import kruskal_mst, same_tree
from repro.core.mst.multimedia_mst import MultimediaMST
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.core.partition.randomized import RandomizedPartitioner
from repro.core.partition.validation import validate_partition
from repro.sim.metrics import MetricsRecorder
from repro.topology.generators import random_geometric_graph, ray_graph, torus_graph
from repro.topology.weights import assign_distinct_weights


class TestFullPipelines:
    def test_partition_then_two_functions_reuse_forest(self):
        graph = assign_distinct_weights(torus_graph(8, 8), seed=5)
        forest = DeterministicPartitioner(graph).run().forest
        inputs = {node: int(node) % 7 for node in graph.nodes()}
        total = compute_global_function(
            graph, INTEGER_ADDITION, inputs, forest=forest, method="deterministic"
        )
        minimum = compute_global_function(
            graph, INTEGER_MINIMUM, inputs, forest=forest, method="randomized", seed=2
        )
        assert total.value == sum(inputs.values())
        assert minimum.value == min(inputs.values())

    def test_mst_and_partition_on_geometric_network(self):
        graph = assign_distinct_weights(random_geometric_graph(70, seed=9), seed=9)
        partition = DeterministicPartitioner(graph).run()
        n = graph.num_nodes()
        report = validate_partition(
            partition.forest, graph, check_mst_subtrees=True,
            max_radius_bound=8 * math.sqrt(n),
        )
        assert report.ok, report.violations
        mst = MultimediaMST(graph).run()
        assert same_tree(mst.mst, kruskal_mst(graph))
        # the partition's tree edges are all part of the MST the solver found
        mst_keys = mst.mst.edge_keys()
        from repro.topology.graph import edge_key

        for child, parent in partition.forest.tree_edges():
            assert edge_key(child, parent) in mst_keys

    def test_ray_graph_pipeline_matches_lower_bound_setting(self):
        graph = assign_distinct_weights(ray_graph(10, 10), seed=3)
        inputs = {node: 1 for node in graph.nodes()}
        result = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=4
        )
        assert result.value == graph.num_nodes()

    def test_shared_metrics_accumulate_across_stages(self):
        graph = assign_distinct_weights(torus_graph(6, 6), seed=1)
        recorder = MetricsRecorder()
        partition = RandomizedPartitioner(graph, seed=1, metrics=recorder).run()
        inputs = {node: 1 for node in graph.nodes()}
        result = compute_global_function(
            graph, INTEGER_ADDITION, inputs, forest=partition.forest,
            method="randomized", seed=1, metrics=recorder,
        )
        assert result.value == 36
        snapshot = recorder.snapshot()
        assert snapshot.rounds == result.total_rounds + partition.metrics.rounds - partition.metrics.rounds
        assert snapshot.phase_rounds.get("partition", 0) > 0
        assert snapshot.phase_rounds.get("local", 0) > 0
        assert snapshot.phase_rounds.get("global", 0) > 0

    def test_deterministic_and_randomized_partitions_agree_on_coverage(self):
        graph = assign_distinct_weights(torus_graph(7, 7), seed=2)
        det = DeterministicPartitioner(graph).run().forest
        rnd = RandomizedPartitioner(graph, seed=2).run().forest
        assert set(det.covered_nodes()) == set(rnd.covered_nodes()) == set(graph.nodes())
