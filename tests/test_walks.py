"""Statistical tests for the random-walk engine against the exact chain solve."""

import math
import random

import pytest

from repro.experiments.e12_random_walk_mfpt import (
    FAMILIES,
    build_family,
    fit_exponents,
    sweep_point,
)
from repro.sim.substreams import substream_seed
from repro.sim.walks import (
    WALK_SCOPE,
    exact_mfpt,
    hub_node,
    mean_first_passage_time,
)
from repro.topology.generators import (
    complete_graph,
    flower_graph,
    path_graph,
    ring_graph,
)
from repro.topology.graph import WeightedGraph


class TestHubNode:
    def test_flower_hub_is_a_generation_zero_node(self):
        # the original cycle nodes double their degree every generation
        assert hub_node(flower_graph(1, 3, 3)) < 4

    def test_ties_break_to_the_smallest_slot(self):
        assert hub_node(ring_graph(8)) == 0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            hub_node(WeightedGraph())


class TestExactMFPT:
    def test_path_endpoints_closed_form(self):
        # on a path 0-1-...-k, the MFPT from the far end to node 0 is k²
        graph = path_graph(6)
        times = exact_mfpt(graph, target=0)
        assert times[0] == 0.0
        assert times[5] == pytest.approx(25.0)

    def test_complete_graph_closed_form(self):
        # from any non-target node of K_n: geometric with p = 1/(n-1)
        graph = complete_graph(7)
        times = exact_mfpt(graph, target=3)
        for u in range(7):
            expected = 0.0 if u == 3 else 6.0
            assert times[u] == pytest.approx(expected)

    def test_ring_closed_form(self):
        # on a cycle C_n, MFPT from distance d to the target is d · (n - d)
        n = 9
        graph = ring_graph(n)
        times = exact_mfpt(graph, target=0)
        for u in range(1, n):
            d = min(u, n - u)
            assert times[u] == pytest.approx(d * (n - d))

    def test_unreachable_target_is_singular(self):
        graph = WeightedGraph()
        graph.add_nodes(range(4))
        graph.add_edge(0, 1, 1)
        graph.add_edge(2, 3, 1)
        with pytest.raises(ValueError):
            exact_mfpt(graph, target=0)

    def test_parameter_validation(self):
        graph = ring_graph(4)
        with pytest.raises(ValueError):
            exact_mfpt(graph, target=4)
        with pytest.raises(ValueError):
            exact_mfpt(WeightedGraph(), target=0)


class TestEngineAgainstExact:
    @pytest.mark.parametrize(
        "graph_fn", (lambda: ring_graph(12), lambda: flower_graph(1, 3, 2),
                     lambda: flower_graph(2, 2, 2), lambda: complete_graph(9)),
        ids=("ring", "flower13", "flower22", "complete"),
    )
    def test_monte_carlo_matches_the_absorbing_chain(self, graph_fn):
        # the engine's estimate must land within a few standard errors of
        # the exact uniform-start MFPT; with 600 walkers the tolerance is
        # comfortably wide of statistical noise yet catches any systematic
        # bias (an off-by-one step count, a start-distribution bug, ...)
        graph = graph_fn()
        target = hub_node(graph)
        exact = exact_mfpt(graph, target)
        n = graph.num_nodes()
        uniform_mean = sum(
            exact[u] for u in range(n) if u != target
        ) / (n - 1)
        summary = mean_first_passage_time(
            graph, target=target, walkers=600, seed=("calibration", n)
        )
        assert summary.capped == 0
        spread = math.sqrt(
            sum(
                (exact[u] - uniform_mean) ** 2
                for u in range(n) if u != target
            ) / (n - 1)
        )
        # first-passage times are roughly exponential, so their standard
        # deviation is of the order of the mean itself; take the larger
        scale = max(spread, uniform_mean)
        tolerance = 5.0 * scale / math.sqrt(600)
        assert abs(summary.mean_steps - uniform_mean) <= tolerance

    def test_walker_streams_are_batch_order_independent(self):
        # walker i's step count must equal a solo replay of its substream
        graph = flower_graph(1, 3, 2)
        target = hub_node(graph)
        seed = ("replay", 7)
        summary = mean_first_passage_time(
            graph, target=target, walkers=8, seed=seed
        )
        csr = graph.csr()
        for i in range(8):
            rng = random.Random(substream_seed(seed, WALK_SCOPE, i))
            position = rng.randrange(csr.n)
            while position == target:
                position = rng.randrange(csr.n)
            steps = 0
            while True:
                steps += 1
                lo = csr.offsets[position]
                degree = csr.offsets[position + 1] - lo
                nxt = csr.targets[lo + rng.randrange(degree)]
                if nxt == target:
                    break
                position = nxt
            assert summary.steps[i] == steps

    def test_step_cap_counts_and_biases_low(self):
        graph = flower_graph(2, 2, 2)
        target = hub_node(graph)
        capped = mean_first_passage_time(
            graph, target=target, walkers=32, seed=0, max_steps=2
        )
        assert capped.capped > 0
        assert capped.max_steps == 2
        assert all(s <= 2 for s in capped.steps)

    def test_default_target_is_the_hub(self):
        graph = flower_graph(1, 3, 2)
        assert mean_first_passage_time(
            graph, walkers=4, seed=1
        ).target == hub_node(graph)

    def test_parameter_validation(self):
        graph = ring_graph(4)
        with pytest.raises(ValueError):
            mean_first_passage_time(graph, walkers=0)
        with pytest.raises(ValueError):
            mean_first_passage_time(graph, target=9)
        with pytest.raises(ValueError):
            mean_first_passage_time(WeightedGraph())


class TestE12Families:
    def test_every_family_builds(self):
        for family in FAMILIES:
            graph, generation = build_family(family, 44, seed=11)
            assert graph.num_nodes() >= 4
            if "flower" in family:
                assert generation == 2
            else:
                assert generation is None
                assert graph.num_nodes() == 44

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_family("small_world", 44, seed=11)

    def test_rewired_flower_keeps_the_degree_sequence(self):
        base, _ = build_family("flower_22", 172, seed=11)
        rewired, _ = build_family("flower_22_rewired", 172, seed=11)

        def degrees(graph):
            csr = graph.csr()
            return sorted(
                csr.offsets[i + 1] - csr.offsets[i] for i in range(csr.n)
            )

        assert degrees(rewired) == degrees(base)

    def test_sweep_point_row_schema(self):
        row = sweep_point(44, "flower_13", walkers=4)
        assert row["n"] == 44
        assert row["generation"] == 2
        assert row["capped"] == 0
        assert row["hub_degree"] == 8
        assert row["mfpt"] > 0


class TestDistinctScalingEffect:
    def test_same_degree_sequence_distinct_mfpt_exponents(self):
        # the headline claim of arXiv:0908.0976, at tier-1 scale: the
        # fractal (2,2)-flower's MFPT-to-hub grows with a visibly larger
        # exponent than the non-fractal (1,3)-flower's, although the two
        # share their degree sequence exactly at every size swept
        rows = [
            sweep_point(n, family, walkers=32)
            for family in ("flower_13", "flower_22", "flower_22_rewired")
            for n in (44, 172, 684, 2732)
        ]
        fits = fit_exponents(rows)
        f13 = fits["flower_13"].exponent
        f22 = fits["flower_22"].exponent
        f22_rewired = fits["flower_22_rewired"].exponent
        # the walk seed is fixed, so these fits are deterministic; the
        # measured gaps (≈ 0.19 and ≈ 0.33) sit well clear of the margins
        assert f22 - f13 > 0.12
        # randomizing the fractal flower with its own degree sequence
        # collapses the scaling back towards the non-fractal regime
        assert f22 - f22_rewired > 0.2
        # sanity: all MFPTs grow with n (positive exponents)
        assert f13 > 0.0 and f22_rewired > 0.0

    def test_fit_exponents_skips_capped_rows_and_single_sizes(self):
        rows = [
            {"family": "a", "n": 10, "mfpt": 100.0, "capped": 0},
            {"family": "a", "n": 100, "mfpt": 1000.0, "capped": 0},
            {"family": "a", "n": 1000, "mfpt": 1.0, "capped": 3},
            {"family": "b", "n": 10, "mfpt": 50.0, "capped": 0},
        ]
        fits = fit_exponents(rows)
        assert set(fits) == {"a"}
        assert fits["a"].exponent == pytest.approx(1.0)
