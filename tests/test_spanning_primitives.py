"""Tests for tree utilities, distributed BFS and broadcast-and-respond."""

import pytest

from repro.protocols.spanning.bfs import BFSTreeProtocol, build_bfs_forest
from repro.protocols.spanning.broadcast_convergecast import (
    TreeAggregationProtocol,
    simulate_broadcast,
    simulate_convergecast,
    simulate_pif,
)
from repro.protocols.spanning.tree_utils import (
    breadth_first_order,
    children_map,
    members_by_root,
    node_depths,
    path_to_root,
    reroot,
    roots_of,
    subtree_sizes,
    tree_edges,
    tree_radius,
    validate_parent_map,
)
from repro.sim.multimedia import MultimediaNetwork
from repro.topology.generators import grid_graph, path_graph
from repro.topology.properties import breadth_first_levels


PATH_PARENTS = {0: None, 1: 0, 2: 1, 3: 2, 4: 3}
STAR_PARENTS = {0: None, 1: 0, 2: 0, 3: 0}


class TestTreeUtils:
    def test_validate_accepts_forest_and_rejects_cycles(self):
        validate_parent_map(PATH_PARENTS)
        with pytest.raises(ValueError):
            validate_parent_map({0: 1, 1: 0})
        with pytest.raises(ValueError):
            validate_parent_map({0: 5})

    def test_children_and_roots(self):
        children = children_map(STAR_PARENTS)
        assert sorted(children[0]) == [1, 2, 3]
        assert roots_of(STAR_PARENTS) == [0]

    def test_depths_and_radius(self):
        depths = node_depths(PATH_PARENTS)
        assert depths == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        assert tree_radius(PATH_PARENTS) == 4
        assert tree_radius({}) == 0

    def test_subtree_sizes(self):
        sizes = subtree_sizes(PATH_PARENTS)
        assert sizes[0] == 5 and sizes[4] == 1
        assert subtree_sizes(STAR_PARENTS)[0] == 4

    def test_tree_edges_and_members(self):
        assert len(tree_edges(PATH_PARENTS)) == 4
        members = members_by_root({**PATH_PARENTS, 10: None})
        assert sorted(members[0]) == [0, 1, 2, 3, 4]
        assert members[10] == [10]

    def test_path_to_root_and_bfs_order(self):
        assert path_to_root(PATH_PARENTS, 4) == [4, 3, 2, 1, 0]
        assert breadth_first_order(STAR_PARENTS, 0)[0] == 0

    def test_reroot_reverses_path(self):
        parents = dict(PATH_PARENTS)
        reroot(parents, list(parents), 4)
        assert parents[4] is None
        assert parents[0] == 1
        assert tree_radius(parents) == 4
        validate_parent_map(parents)

    def test_reroot_missing_node(self):
        with pytest.raises(KeyError):
            reroot(dict(PATH_PARENTS), [], 99)


class TestBuildBFSForest:
    def test_single_root_matches_reference_levels(self):
        graph = grid_graph(4, 4)
        parents, root_of, labels = build_bfs_forest(graph, [0])
        assert labels == breadth_first_levels(graph, 0)
        assert set(root_of.values()) == {0}
        validate_parent_map(parents)

    def test_multi_root_assigns_nearest(self):
        graph = path_graph(9)
        parents, root_of, labels = build_bfs_forest(graph, [0, 8])
        assert root_of[1] == 0 and root_of[7] == 8
        assert labels[4] == 4

    def test_depth_limit(self):
        graph = path_graph(10)
        _, _, labels = build_bfs_forest(graph, [0], depth_limit=3)
        assert max(labels.values()) == 3
        assert 9 not in labels

    def test_requires_valid_roots(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            build_bfs_forest(graph, [])
        with pytest.raises(ValueError):
            build_bfs_forest(graph, [17])


class TestBFSTreeProtocol:
    def test_distributed_bfs_matches_reference(self):
        graph = grid_graph(4, 4)
        inputs = {node: {"is_root": node == 0} for node in graph.nodes()}
        result = MultimediaNetwork(graph, seed=1).run(BFSTreeProtocol, inputs=inputs)
        reference = breadth_first_levels(graph, 0)
        for node, output in result.results.items():
            assert output["label"] == reference[node]
            assert output["root"] == 0

    def test_depth_limited_protocol(self):
        graph = path_graph(8)
        inputs = {
            node: {"is_root": node == 0, "depth_limit": 2} for node in graph.nodes()
        }
        result = MultimediaNetwork(graph, seed=1).run(BFSTreeProtocol, inputs=inputs)
        assert result.results[2]["label"] == 2
        assert result.results[7]["root"] is None


class TestBroadcastConvergecast:
    def test_simulated_convergecast_values_and_cost(self):
        values = {node: 1 for node in PATH_PARENTS}
        aggregates, cost = simulate_convergecast(PATH_PARENTS, values, lambda a, b: a + b)
        assert aggregates == {0: 5}
        assert cost.rounds == 4
        assert cost.messages == 4

    def test_simulated_pif_with_redistribution(self):
        values = {node: node for node in STAR_PARENTS}
        aggregates, cost = simulate_pif(
            STAR_PARENTS, values, lambda a, b: a + b, redistribute=True
        )
        assert aggregates == {0: 6}
        assert cost.rounds == 3
        assert cost.messages == 9

    def test_simulate_broadcast_cost(self):
        cost = simulate_broadcast(PATH_PARENTS)
        assert cost.rounds == 4
        assert cost.messages == 4

    def test_protocol_aggregates_sum_on_grid(self):
        graph = grid_graph(4, 4)
        parents, _, _ = build_bfs_forest(graph, [0])
        children = children_map(parents)
        inputs = {
            node: {
                "parent": parents[node],
                "children": tuple(children[node]),
                "value": 2,
                "combine": lambda a, b: a + b,
                "redistribute": True,
            }
            for node in graph.nodes()
        }
        result = MultimediaNetwork(graph, seed=1).run(TreeAggregationProtocol, inputs=inputs)
        assert all(value == 32 for value in result.results.values())

    def test_protocol_without_redistribution_only_root_knows(self):
        graph = path_graph(5)
        parents, _, _ = build_bfs_forest(graph, [0])
        children = children_map(parents)
        inputs = {
            node: {
                "parent": parents[node],
                "children": tuple(children[node]),
                "value": 1,
                "combine": lambda a, b: a + b,
            }
            for node in graph.nodes()
        }
        result = MultimediaNetwork(graph, seed=1).run(TreeAggregationProtocol, inputs=inputs)
        assert result.results[0] == 5
        assert result.results[4] is None
