"""Unit tests for channel events, messages and the metrics recorder."""

import pytest

from repro.sim.events import ChannelEvent, Message, SlotState, idle_event
from repro.sim.metrics import MetricsRecorder


class TestChannelEvent:
    def test_state_predicates(self):
        assert idle_event(0).is_idle()
        success = ChannelEvent(slot=1, state=SlotState.SUCCESS, payload="x", writer=3)
        assert success.is_success() and not success.is_collision()
        collision = ChannelEvent(slot=2, state=SlotState.COLLISION, writers=(1, 2))
        assert collision.is_collision()

    def test_public_view_hides_writers(self):
        collision = ChannelEvent(slot=2, state=SlotState.COLLISION, writers=(1, 2))
        public = collision.public_view()
        assert public.writers == ()
        assert public.state is SlotState.COLLISION

    def test_message_repr_mentions_endpoints(self):
        message = Message(sender=1, receiver=2, payload="p", round_sent=3)
        text = repr(message)
        assert "1" in text and "2" in text


class TestMetricsRecorder:
    def test_round_and_message_counting(self):
        recorder = MetricsRecorder()
        recorder.record_round(3)
        recorder.record_messages(5)
        assert recorder.rounds == 3
        assert recorder.point_to_point_messages == 5
        assert recorder.communication_complexity == 8

    def test_negative_counts_rejected(self):
        recorder = MetricsRecorder()
        with pytest.raises(ValueError):
            recorder.record_round(-1)
        with pytest.raises(ValueError):
            recorder.record_messages(-1)

    def test_slot_counting_by_state(self):
        recorder = MetricsRecorder()
        recorder.record_slot(SlotState.IDLE, 0)
        recorder.record_slot(SlotState.SUCCESS, 1)
        recorder.record_slot(SlotState.COLLISION, 3)
        assert recorder.channel_slots == 3
        assert recorder.channel_idle == 1
        assert recorder.channel_success == 1
        assert recorder.channel_collision == 1
        assert recorder.channel_write_attempts == 4

    def test_phase_attribution(self):
        recorder = MetricsRecorder()
        recorder.set_phase("local")
        recorder.record_messages(4)
        recorder.record_round(2)
        recorder.set_phase("global")
        recorder.record_round(1)
        snapshot = recorder.snapshot()
        assert snapshot.phase_messages == {"local": 4}
        assert snapshot.phase_rounds == {"local": 2, "global": 1}

    def test_merge(self):
        first = MetricsRecorder()
        first.record_messages(2)
        first.record_round(1)
        second = MetricsRecorder()
        second.record_messages(3)
        second.set_phase("x")
        second.record_round(4)
        first.merge(second)
        assert first.point_to_point_messages == 5
        assert first.rounds == 5
        assert first.phase_rounds == {"x": 4}

    def test_reset(self):
        recorder = MetricsRecorder()
        recorder.record_messages(2)
        recorder.reset()
        assert recorder.point_to_point_messages == 0
        assert recorder.snapshot().as_dict()["rounds"] == 0

    def test_snapshot_is_immutable_copy(self):
        recorder = MetricsRecorder()
        recorder.record_messages(1)
        snapshot = recorder.snapshot()
        recorder.record_messages(10)
        assert snapshot.point_to_point_messages == 1
        assert snapshot.communication_complexity == 1
