"""Property tests for the degree-preserving rewiring step (e12's randomizer)."""

import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.topology.generators import (
    barabasi_albert_graph,
    degree_preserving_rewire,
    flower_generations_for,
    flower_graph,
    flower_size,
    path_graph,
    ring_graph,
)
from repro.topology.graph import WeightedGraph
from repro.topology.properties import is_connected

from test_csr_graph import assert_csr_matches_dicts, random_labeled_graph

SRC = str(Path(__file__).resolve().parent.parent / "src")


def degree_sequence(graph):
    """Sorted slot-degree sequence straight from the CSR offsets."""
    csr = graph.csr()
    return sorted(
        csr.offsets[i + 1] - csr.offsets[i] for i in range(csr.n)
    )


def edge_set(graph):
    """Frozenset of normalized edge pairs."""
    return {
        (edge.u, edge.v) if edge.u < edge.v else (edge.v, edge.u)
        for edge in graph.edges()
    }


class TestDegreeInvariance:
    @pytest.mark.parametrize("seed", (0, 1, 2, 7))
    def test_scale_free_degrees_exactly_preserved(self, seed):
        graph = barabasi_albert_graph(200, attachment=2, seed=3)
        rewired = degree_preserving_rewire(graph, seed=seed)
        assert degree_sequence(rewired) == degree_sequence(graph)
        assert rewired.num_edges() == graph.num_edges()

    @pytest.mark.parametrize("params", ((1, 3), (2, 2)))
    def test_flower_degrees_exactly_preserved(self, params):
        u, v = params
        graph = flower_graph(u, v, 3)
        rewired = degree_preserving_rewire(graph, seed=5)
        assert degree_sequence(rewired) == degree_sequence(graph)

    def test_per_slot_degrees_preserved_not_just_the_multiset(self):
        # double-edge swaps fix every endpoint's degree individually
        graph = barabasi_albert_graph(128, attachment=3, seed=1)
        rewired = degree_preserving_rewire(graph, seed=9)
        before = graph.csr()
        after = rewired.csr()
        for i in range(before.n):
            assert (
                after.offsets[i + 1] - after.offsets[i]
                == before.offsets[i + 1] - before.offsets[i]
            )

    def test_no_self_loops_or_parallel_edges(self):
        graph = ring_graph(64)
        rewired = degree_preserving_rewire(graph, swaps=2000, seed=2)
        edges = list(rewired.edges())
        normalized = [
            (e.u, e.v) if e.u < e.v else (e.v, e.u) for e in edges
        ]
        assert all(u != v for u, v in normalized)
        assert len(normalized) == len(set(normalized))

    def test_actually_rewires_something(self):
        graph = barabasi_albert_graph(200, attachment=2, seed=3)
        rewired = degree_preserving_rewire(graph, seed=0)
        assert edge_set(rewired) != edge_set(graph)

    def test_unit_weights_on_output(self):
        graph = barabasi_albert_graph(64, attachment=2, seed=3)
        rewired = degree_preserving_rewire(graph, seed=0)
        assert all(edge.weight == 1 for edge in rewired.edges())


class TestConnectivity:
    @pytest.mark.parametrize("seed", (0, 1, 2, 3, 4))
    def test_connected_input_stays_connected(self, seed):
        graph = barabasi_albert_graph(300, attachment=2, seed=11)
        rewired = degree_preserving_rewire(graph, seed=seed)
        assert is_connected(rewired)

    def test_path_graph_fragile_case_stays_connected(self):
        # a path is the easiest graph to disconnect by a bad swap
        graph = path_graph(50)
        rewired = degree_preserving_rewire(graph, swaps=500, seed=7)
        assert is_connected(rewired)
        assert degree_sequence(rewired) == degree_sequence(graph)

    def test_disconnected_input_is_still_rewired(self):
        graph = WeightedGraph()
        graph.add_nodes(range(8))
        for u, v in ((0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7), (7, 4)):
            graph.add_edge(u, v, 1)
        rewired = degree_preserving_rewire(graph, swaps=200, seed=1)
        assert degree_sequence(rewired) == degree_sequence(graph)

    def test_connectivity_check_can_be_disabled(self):
        graph = ring_graph(32)
        rewired = degree_preserving_rewire(
            graph, swaps=400, seed=3, ensure_connected=False
        )
        assert degree_sequence(rewired) == degree_sequence(graph)


class TestDeterminism:
    def test_same_seed_same_graph(self):
        graph = barabasi_albert_graph(150, attachment=2, seed=5)
        first = degree_preserving_rewire(graph, seed=42)
        second = degree_preserving_rewire(graph, seed=42)
        assert edge_set(first) == edge_set(second)

    def test_different_seeds_differ(self):
        graph = barabasi_albert_graph(150, attachment=2, seed=5)
        assert edge_set(
            degree_preserving_rewire(graph, seed=0)
        ) != edge_set(degree_preserving_rewire(graph, seed=1))

    def test_deterministic_across_processes(self):
        # the swap stream must not depend on hash randomization: the rewire
        # in a fresh interpreter under a different PYTHONHASHSEED must emit
        # the exact same edge list
        script = (
            "from repro.topology.generators import "
            "barabasi_albert_graph, degree_preserving_rewire\n"
            "g = degree_preserving_rewire("
            "barabasi_albert_graph(100, attachment=2, seed=5), seed=42)\n"
            "print(sorted((min(e.u, e.v), max(e.u, e.v)) "
            "for e in g.edges()))\n"
        )
        outputs = set()
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1
        graph = barabasi_albert_graph(100, attachment=2, seed=5)
        local = degree_preserving_rewire(graph, seed=42)
        expected = repr(sorted(edge_set(local))) + "\n"
        assert outputs == {expected}


class TestCSRDifferential:
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_rewired_identity_graph_csr_matches_dicts(self, seed):
        graph = barabasi_albert_graph(80, attachment=2, seed=4)
        rewired = degree_preserving_rewire(graph, seed=seed)
        assert_csr_matches_dicts(rewired)

    def test_rewired_labeled_graph_keeps_its_labels(self):
        labels = [f"station-{i}" for i in range(24)]
        graph = random_labeled_graph(labels, seed=6, edge_probability=0.5)
        rewired = degree_preserving_rewire(graph, seed=8)
        assert sorted(rewired.nodes()) == sorted(labels)
        assert_csr_matches_dicts(rewired)
        assert Counter(
            d for _, d in (
                (node, len(rewired.adjacency()[node])) for node in labels
            )
        ) == Counter(
            d for _, d in (
                (node, len(graph.adjacency()[node])) for node in labels
            )
        )

    def test_swap_count_validation(self):
        graph = ring_graph(8)
        with pytest.raises(ValueError):
            degree_preserving_rewire(graph, swaps=-1)


class TestFlowerFamilies:
    def test_flower_size_recurrence(self):
        # nodes_{g+1} = nodes_g + (w - 2) · edges_g, edges_{g+1} = w · edges_g
        assert [flower_size(1, 3, g) for g in range(5)] == [
            4, 12, 44, 172, 684,
        ]
        assert [flower_size(2, 2, g) for g in range(5)] == [
            4, 12, 44, 172, 684,
        ]

    def test_generations_for_picks_the_largest_fitting(self):
        assert flower_generations_for(1, 3, 172) == 3
        assert flower_generations_for(1, 3, 683) == 3
        assert flower_generations_for(2, 2, 684) == 4
        assert flower_generations_for(1, 3, 1) == 0

    @pytest.mark.parametrize("g", (0, 1, 2, 3))
    def test_same_degree_sequence_across_the_w4_family(self, g):
        # the literal premise of arXiv:0908.0976: (1,3)- and (2,2)-flowers
        # of equal generation share one degree sequence exactly
        f13 = flower_graph(1, 3, g)
        f22 = flower_graph(2, 2, g)
        assert degree_sequence(f13) == degree_sequence(f22)
        assert f13.num_nodes() == f22.num_nodes() == flower_size(1, 3, g)

    def test_flowers_are_connected(self):
        for u, v in ((1, 3), (2, 2)):
            assert is_connected(flower_graph(u, v, 3))

    def test_nonfractal_flower_has_smaller_diameter(self):
        from repro.topology.properties import diameter

        # u = 1 keeps every original edge as a shortcut; u = 2 stretches
        # distances by 2 per generation
        assert diameter(flower_graph(1, 3, 3)) < diameter(
            flower_graph(2, 2, 3)
        )

    def test_flower_csr_matches_dicts(self):
        assert_csr_matches_dicts(flower_graph(1, 3, 3))
        assert_csr_matches_dicts(flower_graph(2, 2, 3))

    def test_flower_parameter_validation(self):
        with pytest.raises(ValueError):
            flower_graph(0, 3, 2)
        with pytest.raises(ValueError):
            flower_graph(1, 3, -1)
        with pytest.raises(ValueError):
            flower_graph(1, 0, 2)
