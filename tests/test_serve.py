"""``repro serve`` tests: endpoint schemas, ETag/TTL caching, rate limiting.

The contract under test (see ``docs/architecture.md``, "Distributed
execution & serving"): every endpoint serves deterministic JSON, a run
endpoint's payload is exactly :class:`ExperimentResult`'s serialization
(so clients of result *files* and of the API share one schema), ETags are
strong hashes of the exact body honoured with 304s, responses are
memoised for a TTL, and a token bucket answers 429 past the budget.
Clocks are injected, so cache expiry and bucket refill are deterministic.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.experiments.registry import all_experiments
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.serve import ServeApp, TTLCache, TokenBucket, create_server

RUN_NAME = "e2-quick"


class FakeClock:
    """A manually-advanced clock for deterministic TTL/bucket behaviour."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def write_bench(path, labels):
    """A minimal trajectory file with the given ``{label: wall}`` entries."""
    runs = {
        label: {
            "sequence": sequence,
            "note": "",
            "experiments": {"e2": {"wall_seconds": wall}},
        }
        for sequence, (label, wall) in enumerate(labels.items(), start=1)
    }
    path.write_text(json.dumps({"schema": 1, "runs": runs}))


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A served corpus: one completed sharded run plus a trajectory file."""
    root = tmp_path_factory.mktemp("serve")
    run_root = root / "runs"
    run_root.mkdir()
    serial = run_experiment("e2", preset="quick")
    run_experiment("e2", preset="quick", executor="sharded",
                   run_dir=run_root / RUN_NAME)
    bench = root / "BENCH_core.json"
    write_bench(bench, {"before": 2.0, "after": 1.0})
    return {"run_root": run_root, "bench": bench, "serial": serial}


def make_app(corpus, **kwargs):
    return ServeApp(run_root=corpus["run_root"], bench_path=corpus["bench"],
                    **kwargs)


def body_json(body):
    return json.loads(body.decode("utf-8"))


# ----------------------------------------------------------------------
# endpoint payloads
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_index_lists_endpoints(self, corpus):
        status, _, body = make_app(corpus).respond("/")
        assert status == 200
        assert "/bench/trajectory" in body_json(body)["endpoints"]

    def test_experiments_catalog_matches_registry(self, corpus):
        status, _, body = make_app(corpus).respond("/experiments")
        assert status == 200
        catalog = body_json(body)["experiments"]
        assert [entry["id"] for entry in catalog] == [
            spec.id for spec in all_experiments()
        ]
        for entry in catalog:
            assert set(entry) == {"id", "description", "presets", "columns",
                                  "topologies", "adversities"}
            assert {"quick", "default", "hot"} <= set(entry["presets"])

    def test_runs_index_reports_completion(self, corpus):
        status, _, body = make_app(corpus).respond("/runs")
        assert status == 200
        payload = body_json(body)
        (entry,) = [r for r in payload["runs"] if r["name"] == RUN_NAME]
        assert entry["experiment"] == "e2"
        assert entry["preset"] == "quick"
        assert entry["pending_points"] == 0
        assert entry["completed_points"] == entry["num_points"]

    def test_run_payload_is_experiment_result_schema(self, corpus):
        status, _, body = make_app(corpus).respond(f"/runs/{RUN_NAME}")
        assert status == 200
        payload = body_json(body)
        # the payload *is* the result serialization: same keys, loadable by
        # the same deserializer, and the rows equal the serial run's
        reference = corpus["serial"].to_json_dict()
        assert set(payload) == set(reference)
        loaded = ExperimentResult.from_json_dict(payload)
        assert loaded.rows == reference["rows"]
        assert loaded.pending_points == 0
        assert payload["rows"] == reference["rows"]
        assert payload["columns"] == reference["columns"]

    def test_unknown_run_and_traversal_rejected(self, corpus):
        app = make_app(corpus)
        assert app.respond("/runs/no-such-run")[0] == 404
        assert app.respond("/runs/..")[0] == 404
        assert app.respond("/runs/a/b")[0] == 404

    def test_trajectory_orders_labels_by_sequence(self, corpus):
        status, _, body = make_app(corpus).respond("/bench/trajectory")
        assert status == 200
        payload = body_json(body)
        assert payload["labels"] == ["before", "after"]
        assert payload["runs"]["after"]["experiments"]["e2"]["wall_seconds"] == 1.0

    def test_diff_defaults_to_last_two_labels(self, corpus):
        status, _, body = make_app(corpus).respond("/bench/diff")
        assert status == 200
        payload = body_json(body)
        assert (payload["from"], payload["to"]) == ("before", "after")
        assert payload["speedups"] == {"e2": 2.0}

    def test_diff_explicit_and_unknown_labels(self, corpus):
        app = make_app(corpus)
        status, _, body = app.respond("/bench/diff", "from=after&to=before")
        assert status == 200
        assert body_json(body)["speedups"] == {"e2": 0.5}
        status, _, body = app.respond("/bench/diff", "from=nope&to=after")
        assert status == 404
        assert body_json(body)["labels"] == ["nope"]

    def test_missing_trajectory_file_404s(self, corpus, tmp_path):
        app = ServeApp(run_root=corpus["run_root"],
                       bench_path=tmp_path / "absent.json")
        assert app.respond("/bench/trajectory")[0] == 404
        assert app.respond("/bench/diff")[0] == 404

    def test_unknown_endpoint_404s(self, corpus):
        status, _, body = make_app(corpus).respond("/nope")
        assert status == 404
        assert body_json(body)["error"] == "unknown endpoint"


# ----------------------------------------------------------------------
# ETag + TTL caching
# ----------------------------------------------------------------------
class TestCaching:
    def test_etag_round_trip_304(self, corpus):
        app = make_app(corpus)
        status, headers, body = app.respond("/bench/trajectory")
        assert status == 200
        etag = headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')
        status, headers, body = app.respond("/bench/trajectory", "", etag)
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_mismatched_etag_gets_full_body(self, corpus):
        app = make_app(corpus)
        _, headers, first = app.respond("/bench/trajectory")
        status, _, body = app.respond("/bench/trajectory", "", '"deadbeef"')
        assert status == 200
        assert body == first

    def test_etag_in_multi_value_if_none_match(self, corpus):
        app = make_app(corpus)
        _, headers, _ = app.respond("/bench/trajectory")
        status, _, _ = app.respond(
            "/bench/trajectory", "", f'"other", {headers["ETag"]}'
        )
        assert status == 304

    def test_ttl_serves_cached_body_then_expires(self, corpus, tmp_path):
        clock = FakeClock()
        bench = tmp_path / "bench.json"
        write_bench(bench, {"before": 2.0, "after": 1.0})
        app = ServeApp(run_root=corpus["run_root"], bench_path=bench,
                       ttl=5.0, clock=clock)
        _, headers, _ = app.respond("/bench/trajectory")
        etag = headers["ETag"]
        # the file changes, but within the TTL the cached body is served
        write_bench(bench, {"before": 2.0, "after": 1.0, "newer": 0.5})
        clock.advance(4.9)
        _, headers, body = app.respond("/bench/trajectory")
        assert headers["ETag"] == etag
        assert "newer" not in body_json(body)["labels"]
        # past the TTL the new corpus is read and the ETag moves
        clock.advance(0.2)
        _, headers, body = app.respond("/bench/trajectory")
        assert headers["ETag"] != etag
        assert body_json(body)["labels"] == ["before", "after", "newer"]

    def test_zero_ttl_disables_caching(self, corpus, tmp_path):
        bench = tmp_path / "bench.json"
        write_bench(bench, {"before": 2.0})
        app = ServeApp(run_root=corpus["run_root"], bench_path=bench, ttl=0.0)
        _, first_headers, _ = app.respond("/bench/trajectory")
        write_bench(bench, {"before": 2.0, "after": 1.0})
        _, second_headers, _ = app.respond("/bench/trajectory")
        assert second_headers["ETag"] != first_headers["ETag"]

    def test_distinct_queries_cached_separately(self, corpus):
        app = make_app(corpus)
        _, _, forward = app.respond("/bench/diff", "from=before&to=after")
        _, _, backward = app.respond("/bench/diff", "from=after&to=before")
        assert body_json(forward)["speedups"] != body_json(backward)["speedups"]

    def test_error_responses_not_cached(self, corpus, tmp_path):
        bench = tmp_path / "bench.json"
        app = ServeApp(run_root=corpus["run_root"], bench_path=bench, ttl=60.0)
        assert app.respond("/bench/trajectory")[0] == 404
        write_bench(bench, {"before": 2.0})
        assert app.respond("/bench/trajectory")[0] == 200

    def test_ttl_cache_unit(self):
        clock = FakeClock()
        cache = TTLCache(10.0, clock)
        cache.put("k", b"body", '"etag"')
        assert cache.get("k") == (b"body", '"etag"')
        clock.advance(10.1)
        assert cache.get("k") is None


# ----------------------------------------------------------------------
# rate limiting
# ----------------------------------------------------------------------
class TestRateLimit:
    def test_burst_then_429_then_refill(self, corpus):
        clock = FakeClock()
        app = make_app(corpus, rate=1.0, burst=2.0, clock=clock)
        assert app.respond("/experiments")[0] == 200
        assert app.respond("/experiments")[0] == 200
        status, headers, body = app.respond("/experiments")
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert body_json(body)["error"] == "rate limited"
        clock.advance(1.0)
        assert app.respond("/experiments")[0] == 200

    def test_zero_rate_disables_limiting(self, corpus):
        app = make_app(corpus, rate=0.0, burst=0.0)
        for _ in range(20):
            assert app.respond("/")[0] == 200

    def test_token_bucket_unit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert all(bucket.allow() for _ in range(4))
        assert not bucket.allow()
        clock.advance(0.5)  # refills one token
        assert bucket.allow()
        assert not bucket.allow()
        clock.advance(60.0)  # refill clamps at burst
        assert sum(bucket.allow() for _ in range(10)) == 4


# ----------------------------------------------------------------------
# the real HTTP shell
# ----------------------------------------------------------------------
class TestHTTPServer:
    def test_etag_304_over_a_real_socket(self, corpus):
        server = create_server(make_app(corpus))
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05}, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request("GET", "/bench/trajectory")
            first = connection.getresponse()
            body = first.read()
            assert first.status == 200
            etag = first.headers["ETag"]
            assert json.loads(body)["labels"] == ["before", "after"]
            connection.request("GET", "/bench/trajectory",
                               headers={"If-None-Match": etag})
            second = connection.getresponse()
            assert second.status == 304
            assert second.read() == b""
            assert second.headers["ETag"] == etag
            connection.request("GET", "/runs/" + RUN_NAME)
            run = connection.getresponse()
            payload = json.loads(run.read())
            assert run.status == 200
            assert ExperimentResult.from_json_dict(payload).rows == (
                corpus["serial"].to_json_dict()["rows"]
            )
            connection.close()
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()
