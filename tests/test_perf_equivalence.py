"""Golden equivalence checks for the performance work, versioned by RNG era.

The hot-path overhauls (indexed graph core, cached tree primitives, rewritten
inner loops, geometric skip-ahead contention) must not change what the
algorithms *compute*.  Two golden files pin that, under
``tests/data/goldens/``:

* ``v1/equivalence_golden.json`` — workloads whose outputs are independent of
  how the random streams are consumed: topology fingerprints, the
  deterministic partition, and the (Capetanakis-scheduled, deterministic)
  multimedia MST.  These values date back to the seed implementation (commit
  70c26fe) and every PR must reproduce them bit-identically.
* ``v2/equivalence_golden.json`` — workloads that consume the randomized
  contention stream: the Las-Vegas randomized partition and the
  Metcalfe–Boggs contention fingerprints.  PR 4's geometric skip-ahead draws
  the *same distribution* from the RNG in fewer draws, so these values were
  regenerated when it landed (the per-slot ↔ skip-ahead distributional match
  is guarded separately by ``tests/test_skip_ahead.py``).  They are exact for
  the current stream era and pin it against accidental drift.
* ``v3/equivalence_golden.json`` — workloads running *under* a deterministic
  adversity schedule (PR 6): per-preset fingerprints of the global-function
  computation with fault counters, including the abort rows of runs the
  adversary legitimately kills.  The v1/v2 files double as the zero-adversity
  no-op proof — they are untouched by the adversity layer.
* ``v4/equivalence_golden.json`` — workloads that consume *per-node* random
  sources (``ctx.rng``): the Greenberg–Ladner estimator and the randomized
  leader election, plus the e10 registry sweep that runs them end to end.
  PR 7's flyweight sim layer replaced the eager per-node ``Random`` objects
  (one master draw each, in node order) with hash-derived substreams
  (:mod:`repro.sim.substreams`), which started this era; the literal
  ``substream_seed`` values are pinned here too, so the derivation itself
  cannot drift.  v1–v3 are untouched by the substream switch — no workload
  they cover draws from a per-node source.
* ``v5/equivalence_golden.json`` — the workload-family streams PR 10 opened:
  the degree-preserving rewiring swap stream (exact edge lists of rewired
  scale-free and flower graphs), the random-walk engine's per-walker
  substreams (exact step counts to the hub), and the dissemination
  schedulers (round/transmission/reception fingerprints per scheduler,
  fault-free and under the loss preset, aborts included), plus the e12/e13
  quick sweeps through the registry path.  These streams were introduced
  whole with PR 10 and touch none of the draws v1–v4 pin — those eras
  stay byte-identical.

Regenerate the files (only do this when an RNG-stream or algorithm change is
intended — a pure performance PR must show an empty diff here):

    PYTHONPATH=src python tests/test_perf_equivalence.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "data" / "goldens"
GOLDEN_V1 = GOLDEN_DIR / "v1" / "equivalence_golden.json"
GOLDEN_V2 = GOLDEN_DIR / "v2" / "equivalence_golden.json"
GOLDEN_V3 = GOLDEN_DIR / "v3" / "equivalence_golden.json"
GOLDEN_V4 = GOLDEN_DIR / "v4" / "equivalence_golden.json"
GOLDEN_V5 = GOLDEN_DIR / "v5" / "equivalence_golden.json"


def _compute_deterministic_state():
    """Fixed workloads whose outputs do not depend on RNG stream consumption."""
    from repro.core.mst.multimedia_mst import MultimediaMST
    from repro.core.partition.deterministic import DeterministicPartitioner
    from repro.experiments.harness import make_topology

    state = {}

    # topology fingerprints: edge iteration order and weight assignment are
    # load-bearing (they feed every seeded experiment), so pin them exactly.
    # scale_free/ad_hoc entered with PR 2 — their fingerprints pin the new
    # generators the same way the seed topologies are pinned.
    for kind, n in (
        ("grid", 64),
        ("grid", 144),
        ("ring", 256),
        ("scale_free", 128),
        ("ad_hoc", 128),
    ):
        graph = make_topology(kind, n, seed=11)
        state[f"graph/{kind}/{n}"] = {
            "n": graph.num_nodes(),
            "m": graph.num_edges(),
            "total_weight": graph.total_weight(),
            "edges": [[edge.u, edge.v, edge.weight] for edge in graph.edges()],
        }

    # deterministic partition: forest + full accounting
    for kind, n in (("grid", 64), ("grid", 144)):
        graph = make_topology(kind, n, seed=11)
        result = DeterministicPartitioner(graph).run()
        parent_map = result.forest.parent_map()
        state[f"det_partition/{kind}/{n}"] = {
            "parents": sorted(
                [node, parent] for node, parent in parent_map.items()
                if parent is not None
            ),
            "cores": sorted(result.forest.cores),
            "rounds": result.metrics.rounds,
            "busy_rounds": result.busy_rounds,
            "messages": result.metrics.point_to_point_messages,
        }

    # multimedia MST: exact tree + accounting (roots are scheduled with the
    # deterministic Capetanakis protocol, so the MST stays in the v1 era)
    graph = make_topology("ring", 256, seed=11)
    result = MultimediaMST(graph).run()
    state["mst/ring/256"] = {
        "edges": sorted(sorted(edge.key()) for edge in result.mst.edges),
        "total_weight": result.mst.total_weight,
        "rounds": result.metrics.rounds,
        "messages": result.metrics.point_to_point_messages,
        "initial_fragments": result.initial_fragments,
    }
    return state


def _compute_stream_state():
    """Fixed-seed workloads that consume the randomized contention stream."""
    import random

    from repro.core.global_function.baselines import compute_on_channel_only
    from repro.core.global_function.semigroup import INTEGER_ADDITION
    from repro.core.partition.randomized import RandomizedPartitioner
    from repro.experiments.harness import make_topology
    from repro.protocols.collision.base import run_contention
    from repro.protocols.collision.metcalfe_boggs import MetcalfeBoggsContender

    state = {}

    # randomized partition (Las Vegas): forest + accounting on fixed seeds;
    # the channel verification stage schedules the roots with Metcalfe–Boggs
    # contention, so the round counts sit in the skip-ahead stream era
    for kind, n, seeds in (("grid", 100, (1, 3)), ("scale_free", 128, (1,))):
        for seed in seeds:
            graph = make_topology(kind, n, seed=11)
            result = RandomizedPartitioner(graph, seed=seed, las_vegas=True).run()
            parent_map = result.forest.parent_map()
            state[f"rand_partition/{kind}/{n}/seed{seed}"] = {
                "parents": sorted(
                    [node, parent] for node, parent in parent_map.items()
                    if parent is not None
                ),
                "cores": sorted(result.forest.cores),
                "rounds": result.metrics.rounds,
                "messages": result.metrics.point_to_point_messages,
                "restarts": result.restarts,
            }

    # raw Metcalfe–Boggs contention fingerprints: the exact schedule the
    # geometric skip-ahead samples on fixed seeds (order, slot counts)
    for k, seed in ((16, 7), (48, 21)):
        rng = random.Random(seed)
        contenders = [
            MetcalfeBoggsContender(
                identity=i,
                estimated_contenders=k,
                rng=random.Random(rng.randrange(2**63)),
                payload=i,
            )
            for i in range(k)
        ]
        outcome = run_contention(contenders)
        state[f"contention/metcalfe_boggs/k{k}/seed{seed}"] = {
            "order": outcome.order,
            "slots_used": outcome.slots_used,
            "collisions": outcome.collisions,
            "idle": outcome.idle,
        }

    # the channel-only baseline the skip-ahead makes affordable: end-to-end
    # value + slot accounting on a fixed seed
    graph = make_topology("ring", 256, seed=11)
    inputs = {node: int(node) for node in graph.nodes()}
    baseline = compute_on_channel_only(graph, INTEGER_ADDITION, inputs, seed=5)
    state["channel_baseline/ring/256"] = {
        "value": baseline.value,
        "rounds": baseline.rounds,
        "channel_idle": baseline.metrics.channel_idle,
        "channel_collision": baseline.metrics.channel_collision,
    }
    return state


def _compute_adversity_state():
    """Fixed-seed workloads running under each shipped adversity preset.

    Every entry records either the completed run (value + rounds) or the
    deterministic abort (rounds, pending, reason), always alongside the
    schedule's fault counters — so both the fault draws and the abort
    machinery are pinned bit-exactly.
    """
    from repro.core.global_function.multimedia import compute_global_function
    from repro.core.global_function.semigroup import INTEGER_ADDITION
    from repro.experiments.harness import make_topology
    from repro.sim.adversity import ADVERSITY_PRESETS, adversity_state
    from repro.sim.errors import AdversityAbort

    state = {}
    for preset in sorted(name for name in ADVERSITY_PRESETS if name != "none"):
        graph = make_topology("grid", 64, seed=11)
        inputs = {node: int(node) for node in graph.nodes()}
        adv = adversity_state(preset, "golden", "grid", 64, preset)
        entry = {}
        try:
            result = compute_global_function(
                graph, INTEGER_ADDITION, inputs, method="randomized", seed=5,
                adversity=adv,
            )
            entry["status"] = "ok"
            entry["value"] = result.value
            entry["rounds"] = result.total_rounds
        except AdversityAbort as abort:
            entry["status"] = "abort"
            entry["rounds"] = abort.rounds
            entry["pending"] = abort.pending
            entry["reason"] = abort.reason
        entry["counters"] = adv.counters()
        state[f"adversity/global/grid/64/{preset}"] = entry

    # the e11 quick sweep end to end: schedule derivation, both media, the
    # status column — the registry-path fingerprint of the adversity axis
    from repro.experiments.runner import run_experiment

    result = run_experiment("e11", preset="quick")
    state["adversity/e11/quick"] = {"rows": result.rows}
    return state


def _compute_substream_state():
    """Fixed-seed workloads drawing from per-node substreams (``ctx.rng``)."""
    from repro.experiments.harness import make_topology
    from repro.experiments.runner import run_experiment
    from repro.protocols.collision.greenberg_ladner import GreenbergLadnerEstimator
    from repro.protocols.collision.leader_election import RandomizedLeaderElection
    from repro.sim.multimedia import MultimediaNetwork
    from repro.sim.substreams import substream_seed

    state = {}

    # the derivation itself: literal seeds for fixed (master, scope, key)
    # triples — any change to the hash recipe shows up here first
    for master, scope, key in (
        (0, "sim.multimedia", (0,)),
        (0, "sim.synchronizer", (0,)),
        (5, "sim.multimedia", (7,)),
        (5, "sim.multimedia", ("a",)),
        (2**63, "sim.multimedia", ((1, 2),)),
    ):
        state[f"substream_seed/{master}/{scope}/{key!r}"] = substream_seed(
            master, scope, *key
        )

    # the two per-node-source protocols on the simulator, fixed topologies
    graph = make_topology("ring", 16, seed=11)
    result = MultimediaNetwork(graph, seed=4).run(GreenbergLadnerEstimator)
    state["gl_estimator/ring/16/seed4"] = {
        "estimates": sorted(
            {value.estimate for value in result.results.values()}
        ),
        "rounds": result.rounds,
    }
    graph = make_topology("ring", 12, seed=11)
    result = MultimediaNetwork(graph, seed=9).run(RandomizedLeaderElection)
    state["leader_election/ring/12/seed9"] = {
        "winners": sorted(set(result.results.values())),
        "rounds": result.rounds,
    }

    # the e10 quick sweep end to end: synchronizer pulses and the
    # Greenberg–Ladner estimate columns through the registry path
    result = run_experiment("e10", preset="quick")
    state["substream/e10/quick"] = {"rows": result.rows}
    return state


def _compute_workload_state():
    """Fixed-seed fingerprints of the PR 10 workload-family streams.

    Three independent stream families, none of which existed before PR 10:
    the rewiring swap stream, the per-walker walk substreams, and the
    dissemination scheduler streams (plus the adversity draws dissemination
    consumes).  Each is pinned at its raw layer *and* through the registry
    path (the e12/e13 quick sweeps), so both the engines and their
    experiment wiring are covered.
    """
    from repro.experiments.runner import run_experiment
    from repro.protocols.dissemination import SCHEDULERS, disseminate
    from repro.sim.adversity import adversity_state
    from repro.sim.errors import AdversityAbort
    from repro.sim.walks import mean_first_passage_time
    from repro.topology.generators import (
        ad_hoc_affectance_graph,
        barabasi_albert_graph,
        degree_preserving_rewire,
        flower_graph,
    )

    state = {}

    # the rewiring swap stream: exact edge lists on fixed seeds pin the draw
    # order, the rejection rule, and the windowed connectivity rollback
    for name, base in (
        ("scale_free/96", barabasi_albert_graph(96, attachment=2, seed=3)),
        ("flower_22/g3", flower_graph(2, 2, 3)),
    ):
        rewired = degree_preserving_rewire(base, seed=42)
        state[f"rewire/{name}/seed42"] = {
            "edges": sorted(
                [min(edge.u, edge.v), max(edge.u, edge.v)]
                for edge in rewired.edges()
            ),
        }

    # the walk engine: exact per-walker step counts (start draws + every
    # neighbour choice) on both flower families
    for u, v in ((1, 3), (2, 2)):
        graph = flower_graph(u, v, 2)
        summary = mean_first_passage_time(
            graph, walkers=16, seed=("golden", u, v)
        )
        state[f"walks/flower_{u}{v}/g2"] = {
            "target": summary.target,
            "steps": list(summary.steps),
            "capped": summary.capped,
        }

    # the dissemination schedulers on one ad-hoc instance: fault-free runs
    # pin the decay coin stream and the (deterministic) family packing;
    # loss-preset runs additionally pin the adversity draws and the abort
    # machinery, counters included
    graph, affectance = ad_hoc_affectance_graph(
        48, seed=11, return_affectance=True
    )
    for scheduler in SCHEDULERS:
        result = disseminate(graph, affectance, scheduler=scheduler, seed=5)
        state[f"dissemination/ad_hoc/48/{scheduler}"] = {
            "rounds": result.rounds,
            "transmissions": result.transmissions,
            "receptions": result.receptions,
        }
        adv = adversity_state("loss", "golden-dissemination", 48, scheduler)
        entry = {}
        try:
            lossy = disseminate(
                graph, affectance, scheduler=scheduler, seed=5, adversity=adv
            )
            entry["status"] = "ok"
            entry["rounds"] = lossy.rounds
            entry["receptions"] = lossy.receptions
        except AdversityAbort as abort:
            entry["status"] = "abort"
            entry["rounds"] = abort.rounds
            entry["pending"] = abort.pending
        entry["counters"] = adv.counters()
        state[f"dissemination/ad_hoc/48/{scheduler}/loss"] = entry

    # the registry path end to end: the quick sweeps of both experiments
    state["walks/e12/quick"] = {
        "rows": run_experiment("e12", preset="quick").rows
    }
    state["dissemination/e13/quick"] = {
        "rows": run_experiment("e13", preset="quick").rows
    }
    return state


def _normalize(value):
    """Round-trip through JSON so tuples/lists and int/float compare equal."""
    return json.loads(json.dumps(value))


def _load(path: Path):
    if not path.exists():
        pytest.fail(
            f"{path} is missing; regenerate it with "
            "`PYTHONPATH=src python tests/test_perf_equivalence.py`"
        )
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def golden_v1():
    return _load(GOLDEN_V1)


@pytest.fixture(scope="module")
def golden_v2():
    return _load(GOLDEN_V2)


@pytest.fixture(scope="module")
def golden_v3():
    return _load(GOLDEN_V3)


@pytest.fixture(scope="module")
def current_v1():
    return _normalize(_compute_deterministic_state())


@pytest.fixture(scope="module")
def current_v2():
    return _normalize(_compute_stream_state())


@pytest.fixture(scope="module")
def golden_v4():
    return _load(GOLDEN_V4)


@pytest.fixture(scope="module")
def current_v3():
    return _normalize(_compute_adversity_state())


@pytest.fixture(scope="module")
def current_v4():
    return _normalize(_compute_substream_state())


@pytest.fixture(scope="module")
def golden_v5():
    return _load(GOLDEN_V5)


@pytest.fixture(scope="module")
def current_v5():
    return _normalize(_compute_workload_state())


def test_golden_v1_covers_same_workloads(golden_v1, current_v1):
    assert set(golden_v1) == set(current_v1)


def test_golden_v2_covers_same_workloads(golden_v2, current_v2):
    assert set(golden_v2) == set(current_v2)


def test_golden_v3_covers_same_workloads(golden_v3, current_v3):
    assert set(golden_v3) == set(current_v3)


def test_golden_v4_covers_same_workloads(golden_v4, current_v4):
    assert set(golden_v4) == set(current_v4)


def test_golden_v5_covers_same_workloads(golden_v5, current_v5):
    assert set(golden_v5) == set(current_v5)


@pytest.mark.parametrize(
    "key",
    [
        "graph/grid/64",
        "graph/grid/144",
        "graph/ring/256",
        "graph/scale_free/128",
        "graph/ad_hoc/128",
        "det_partition/grid/64",
        "det_partition/grid/144",
        "mst/ring/256",
    ],
)
def test_output_matches_seed_golden(golden_v1, current_v1, key):
    assert current_v1[key] == golden_v1[key], (
        f"{key} diverged from the seed implementation; if the algorithm "
        "change is intentional, regenerate tests/data/goldens/"
    )


@pytest.mark.parametrize(
    "key",
    [
        "rand_partition/grid/100/seed1",
        "rand_partition/grid/100/seed3",
        "rand_partition/scale_free/128/seed1",
        "contention/metcalfe_boggs/k16/seed7",
        "contention/metcalfe_boggs/k48/seed21",
        "channel_baseline/ring/256",
    ],
)
def test_output_matches_stream_golden(golden_v2, current_v2, key):
    assert current_v2[key] == golden_v2[key], (
        f"{key} diverged from the v2 (skip-ahead) RNG stream era; if the "
        "stream change is intentional, regenerate tests/data/goldens/"
    )


@pytest.mark.parametrize(
    "key",
    [
        "adversity/global/grid/64/crash",
        "adversity/global/grid/64/churn",
        "adversity/global/grid/64/jam",
        "adversity/global/grid/64/loss",
        "adversity/e11/quick",
    ],
)
def test_output_matches_adversity_golden(golden_v3, current_v3, key):
    assert current_v3[key] == golden_v3[key], (
        f"{key} diverged from the v3 (adversity) fingerprint era; if the "
        "schedule or stream change is intentional, regenerate "
        "tests/data/goldens/"
    )


def test_output_matches_substream_golden(golden_v4, current_v4):
    for key in golden_v4:
        assert current_v4[key] == golden_v4[key], (
            f"{key} diverged from the v4 (per-node substream) stream era; if "
            "the stream change is intentional, regenerate tests/data/goldens/"
        )


def test_output_matches_workload_golden(golden_v5, current_v5):
    for key in golden_v5:
        assert current_v5[key] == golden_v5[key], (
            f"{key} diverged from the v5 (workload-family) stream era; if "
            "the stream change is intentional, regenerate tests/data/goldens/"
        )


@pytest.mark.parametrize(
    "fixture,path",
    [
        ("current_v1", GOLDEN_V1),
        ("current_v2", GOLDEN_V2),
        ("current_v3", GOLDEN_V3),
        ("current_v4", GOLDEN_V4),
        ("current_v5", GOLDEN_V5),
    ],
    ids=["v1", "v2", "v3", "v4", "v5"],
)
def test_goldens_regenerate_byte_identically(fixture, path, request):
    """Re-serializing the current state must reproduce the committed bytes.

    Stricter than the per-key equality above: it also pins key coverage,
    serialization format and trailing newline, so running this module's
    ``__main__`` regeneration on an equivalent tree leaves ``git diff``
    empty — the check the CSR graph-core refactor (PR 8) is held to.
    """
    current = request.getfixturevalue(fixture)
    regenerated = json.dumps(current, indent=2, sort_keys=True) + "\n"
    assert regenerated == path.read_text(), (
        f"{path.name} would not regenerate byte-identically; if the change "
        "is intentional, regenerate tests/data/goldens/ and review the diff"
    )


if __name__ == "__main__":
    for path, state in (
        (GOLDEN_V1, _compute_deterministic_state()),
        (GOLDEN_V2, _compute_stream_state()),
        (GOLDEN_V3, _compute_adversity_state()),
        (GOLDEN_V4, _compute_substream_state()),
        (GOLDEN_V5, _compute_workload_state()),
    ):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(_normalize(state), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {path}")
