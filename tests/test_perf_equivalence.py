"""Seed-vs-optimized equivalence checks for the hot-path overhaul.

The performance work (indexed graph core, cached tree primitives, rewritten
hot loops) must not change any algorithm output: same weighted topologies,
same partition forests, same MSTs, and the same time/message accounting on
fixed seeds.  This module pins all of that against golden data captured from
the seed implementation (commit 70c26fe) *before* the optimization landed:

    PYTHONPATH=src python tests/test_perf_equivalence.py   # regenerate golden

Regenerating on purpose is fine when an algorithm change is intended; the
point of the file is that a *performance* PR shows an empty diff here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "data" / "equivalence_golden.json"


def _compute_state():
    """Run the fixed-seed workloads and return their observable outputs."""
    from repro.core.mst.multimedia_mst import MultimediaMST
    from repro.core.partition.deterministic import DeterministicPartitioner
    from repro.core.partition.randomized import RandomizedPartitioner
    from repro.experiments.harness import make_topology

    state = {}

    # topology fingerprints: edge iteration order and weight assignment are
    # load-bearing (they feed every seeded experiment), so pin them exactly.
    # scale_free/ad_hoc entered with PR 2 — their fingerprints pin the new
    # generators the same way the seed topologies are pinned.
    for kind, n in (
        ("grid", 64),
        ("grid", 144),
        ("ring", 256),
        ("scale_free", 128),
        ("ad_hoc", 128),
    ):
        graph = make_topology(kind, n, seed=11)
        state[f"graph/{kind}/{n}"] = {
            "n": graph.num_nodes(),
            "m": graph.num_edges(),
            "total_weight": graph.total_weight(),
            "edges": [[edge.u, edge.v, edge.weight] for edge in graph.edges()],
        }

    # deterministic partition: forest + full accounting
    for kind, n in (("grid", 64), ("grid", 144)):
        graph = make_topology(kind, n, seed=11)
        result = DeterministicPartitioner(graph).run()
        parent_map = result.forest.parent_map()
        state[f"det_partition/{kind}/{n}"] = {
            "parents": sorted(
                [node, parent] for node, parent in parent_map.items()
                if parent is not None
            ),
            "cores": sorted(result.forest.cores),
            "rounds": result.metrics.rounds,
            "busy_rounds": result.busy_rounds,
            "messages": result.metrics.point_to_point_messages,
        }

    # randomized partition (Las Vegas): forest + accounting on fixed seeds;
    # the scale_free case guards the partition pipeline on the new
    # heavy-tailed topology end to end
    for kind, n, seeds in (("grid", 100, (1, 3)), ("scale_free", 128, (1,))):
        for seed in seeds:
            graph = make_topology(kind, n, seed=11)
            result = RandomizedPartitioner(graph, seed=seed, las_vegas=True).run()
            parent_map = result.forest.parent_map()
            state[f"rand_partition/{kind}/{n}/seed{seed}"] = {
                "parents": sorted(
                    [node, parent] for node, parent in parent_map.items()
                    if parent is not None
                ),
                "cores": sorted(result.forest.cores),
                "rounds": result.metrics.rounds,
                "messages": result.metrics.point_to_point_messages,
                "restarts": result.restarts,
            }

    # multimedia MST: exact tree + accounting
    graph = make_topology("ring", 256, seed=11)
    result = MultimediaMST(graph).run()
    state["mst/ring/256"] = {
        "edges": sorted(sorted(edge.key()) for edge in result.mst.edges),
        "total_weight": result.mst.total_weight,
        "rounds": result.metrics.rounds,
        "messages": result.metrics.point_to_point_messages,
        "initial_fragments": result.initial_fragments,
    }
    return state


def _normalize(value):
    """Round-trip through JSON so tuples/lists and int/float compare equal."""
    return json.loads(json.dumps(value))


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} is missing; regenerate it with "
            "`PYTHONPATH=src python tests/test_perf_equivalence.py`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return _normalize(_compute_state())


def test_golden_covers_same_workloads(golden, current):
    assert set(golden) == set(current)


@pytest.mark.parametrize(
    "key",
    [
        "graph/grid/64",
        "graph/grid/144",
        "graph/ring/256",
        "graph/scale_free/128",
        "graph/ad_hoc/128",
        "det_partition/grid/64",
        "det_partition/grid/144",
        "rand_partition/grid/100/seed1",
        "rand_partition/grid/100/seed3",
        "rand_partition/scale_free/128/seed1",
        "mst/ring/256",
    ],
)
def test_output_matches_seed_golden(golden, current, key):
    assert current[key] == golden[key], (
        f"{key} diverged from the seed implementation; if the algorithm "
        "change is intentional, regenerate tests/data/equivalence_golden.json"
    )


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(_normalize(_compute_state()), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
