"""Executor subsystem tests: backend matrix, checkpoints, shards, schema.

The contract under test (see ``docs/architecture.md``, "Execution
backends"): every backend produces rows bit-identical to a serial run of
the same sweep, sharded runs checkpoint/resume/merge deterministically, a
corrupt or foreign checkpoint is recomputed rather than trusted, and the
``RESULT_SCHEMA`` 2 serialization round-trips (while schema-1 files still
load).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.executors import (
    ExecutorConfigError,
    ProcessExecutor,
    ShardedExecutor,
    make_executor,
    parse_shard,
    shard_indices,
    sweep_digest,
)
from repro.experiments.runner import (
    RESULT_SCHEMA,
    ExperimentResult,
    run_experiment,
)


@pytest.fixture(scope="module")
def serial_e2():
    """The reference serial result every backend must reproduce."""
    return run_experiment("e2", preset="quick")


@pytest.fixture(scope="module")
def serial_e4():
    """A randomized-stream reference (seeded, so still deterministic)."""
    return run_experiment("e4", preset="quick")


# ----------------------------------------------------------------------
# backend matrix: serial vs process vs sharded bit-identity
# ----------------------------------------------------------------------
class TestExecutorMatrix:
    def test_process_rows_match_serial(self, serial_e2):
        result = run_experiment("e2", preset="quick", executor="process",
                                processes=2)
        assert result.rows == serial_e2.rows
        assert result.executor == "process"
        assert result.pending_points == 0

    def test_sharded_rows_match_serial(self, serial_e2, tmp_path):
        result = run_experiment("e2", preset="quick", executor="sharded",
                                run_dir=tmp_path / "run")
        assert result.rows == serial_e2.rows
        assert result.executor == "sharded"
        assert result.pending_points == 0

    def test_sharded_matches_serial_on_random_stream(self, serial_e4, tmp_path):
        result = run_experiment("e4", preset="quick", executor="sharded",
                                run_dir=tmp_path / "run")
        assert result.rows == serial_e4.rows

    def test_explicit_serial_name(self, serial_e2):
        result = run_experiment("e2", preset="quick", executor="serial")
        assert result.rows == serial_e2.rows
        assert result.executor == "serial"

    def test_unknown_executor_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_experiment("e2", preset="quick", executor="quantum")

    def test_sharded_options_require_sharded_backend(self):
        with pytest.raises(ValueError, match="--executor sharded"):
            make_executor("serial", resume=True)
        with pytest.raises(ValueError, match="--executor sharded"):
            make_executor("process", shard=(0, 2))

    def test_process_worker_count_defaults_to_machine(self):
        backend = make_executor("process")
        assert isinstance(backend, ProcessExecutor)
        assert backend.processes >= 1  # cpu count, never pinned to 2
        explicit = make_executor("process", processes=7)
        assert explicit.processes == 7


# ----------------------------------------------------------------------
# shard layout: deterministic disjoint cover
# ----------------------------------------------------------------------
class TestShardLayout:
    def test_disjoint_cover(self):
        for num_points in (1, 2, 5, 8, 17):
            for shard_count in range(1, num_points + 1):
                plan = shard_indices(num_points, shard_count)
                assert len(plan) == shard_count
                flattened = [index for shard in plan for index in shard]
                # disjoint and covering: every index exactly once
                assert sorted(flattened) == list(range(num_points))

    def test_round_robin_striping(self):
        assert shard_indices(7, 3) == [[0, 3, 6], [1, 4], [2, 5]]

    def test_non_positive_count_rejected(self):
        with pytest.raises(ValueError):
            shard_indices(4, 0)

    def test_oversized_count_yields_empty_shards(self):
        # farm tooling fixes N before knowing the sweep size: the excess
        # shards are empty, the layout is still the requested N
        plan = shard_indices(2, 5)
        assert plan == [[0], [1], [], [], []]

    def test_parse_shard(self):
        assert parse_shard("1/4") == (0, 4)
        assert parse_shard("4/4") == (3, 4)
        for bad in ("0/4", "5/4", "2", "a/b", "2/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_digest_covers_layout_and_parameters(self):
        base = sweep_digest("e2", "quick", {"sizes": (16, 36)}, 2, 2)
        assert sweep_digest("e2", "quick", {"sizes": (16, 36)}, 2, 2) == base
        assert sweep_digest("e2", "quick", {"sizes": (16, 36)}, 2, 1) != base
        assert sweep_digest("e2", "hot", {"sizes": (16, 36)}, 2, 2) != base
        assert sweep_digest("e4", "quick", {"sizes": (16, 36)}, 2, 2) != base
        assert sweep_digest("e2", "quick", {"sizes": (16, 64)}, 2, 2) != base


# ----------------------------------------------------------------------
# checkpoint / resume semantics
# ----------------------------------------------------------------------
class TestShardedCheckpoints:
    def test_interrupted_run_resumes_to_serial_rows(self, serial_e2, tmp_path):
        run_dir = tmp_path / "run"
        partial = run_experiment("e2", preset="quick", executor="sharded",
                                 run_dir=run_dir, max_shards=1)
        assert partial.pending_points == 1
        assert len(partial.rows) == 1
        assert partial.rows[0] == serial_e2.rows[0]
        resumed = run_experiment("e2", preset="quick", executor="sharded",
                                 run_dir=run_dir, resume=True)
        assert resumed.pending_points == 0
        assert resumed.rows == serial_e2.rows

    def test_farmed_shards_merge_into_full_result(self, serial_e2, tmp_path):
        run_dir = tmp_path / "farm"
        first = run_experiment("e2", preset="quick", shard=(0, 2),
                               run_dir=run_dir)
        assert first.pending_points == 1
        last = run_experiment("e2", preset="quick", shard=(1, 2),
                              run_dir=run_dir)
        # the last farm invocation observes every completed checkpoint
        assert last.pending_points == 0
        assert last.rows == serial_e2.rows

    def test_collect_without_shard_adopts_manifest_layout(self, serial_e2,
                                                          tmp_path):
        # the README flow: farm out with --shard K/N, then collect with a
        # bare --resume — the collect invocation must adopt the farm's N
        # from the manifest instead of defaulting to one shard per point
        run_dir = tmp_path / "farm"
        run_experiment("e2", preset="quick", shard=(0, 2), run_dir=run_dir)
        collected = run_experiment("e2", preset="quick", resume=True,
                                   run_dir=run_dir)
        assert collected.pending_points == 0
        assert collected.rows == serial_e2.rows
        # the second shard was computed by the collect run, under the same
        # 2-shard layout (no shard-0002 file from a per-point default)
        assert sorted(p.name for p in run_dir.glob("shard-*.json")) == [
            "shard-0000.json", "shard-0001.json",
        ]

    def test_shard_count_beyond_points_farms_with_empty_shards(
            self, serial_e2, tmp_path):
        run_dir = tmp_path / "farm"
        for index in range(5):  # N=5 over a 2-point sweep
            result = run_experiment("e2", preset="quick", shard=(index, 5),
                                    run_dir=run_dir)
        assert result.pending_points == 0
        assert result.rows == serial_e2.rows

    def test_corrupt_checkpoint_is_recomputed(self, serial_e2, tmp_path):
        run_dir = tmp_path / "run"
        run_experiment("e2", preset="quick", executor="sharded",
                       run_dir=run_dir)
        (run_dir / "shard-0000.json").write_text("{truncated garbage")
        resumed = run_experiment("e2", preset="quick", executor="sharded",
                                 run_dir=run_dir, resume=True)
        assert resumed.rows == serial_e2.rows

    def test_wrong_shape_checkpoint_is_recomputed(self, serial_e2, tmp_path):
        run_dir = tmp_path / "run"
        run_experiment("e2", preset="quick", executor="sharded",
                       run_dir=run_dir)
        path = run_dir / "shard-0001.json"
        data = json.loads(path.read_text())
        del data["rows"][0]["n"]  # row no longer matches the spec's columns
        path.write_text(json.dumps(data))
        resumed = run_experiment("e2", preset="quick", executor="sharded",
                                 run_dir=run_dir, resume=True)
        assert resumed.rows == serial_e2.rows

    def test_foreign_run_directory_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        run_experiment("e2", preset="quick", executor="sharded",
                       run_dir=run_dir)
        with pytest.raises(ExecutorConfigError, match="different sweep"):
            run_experiment("e4", preset="quick", executor="sharded",
                           run_dir=run_dir, resume=True)

    def test_stale_checkpoints_ignored_after_manifest_loss(self, serial_e2,
                                                           tmp_path):
        # checkpoints carry the sweep digest themselves: losing the manifest
        # must not let a differently-parameterised sweep's shards merge in
        run_dir = tmp_path / "run"
        run_experiment("e2", preset="quick", executor="sharded",
                       run_dir=run_dir,
                       overrides={"sizes": (25, 49)})
        (run_dir / "manifest.json").unlink()
        result = run_experiment("e2", preset="quick", executor="sharded",
                                run_dir=run_dir, resume=True)
        assert result.rows == serial_e2.rows

    def test_shard_index_out_of_range(self, tmp_path):
        executor = ShardedExecutor(run_dir=tmp_path / "run", shard_count=2,
                                   shard_index=2)
        with pytest.raises(ValueError, match="out of range"):
            run_experiment("e2", preset="quick", executor=executor)

    def test_resumed_wall_seconds_accumulates_shard_compute(self, tmp_path):
        run_dir = tmp_path / "run"
        run_experiment("e2", preset="quick", executor="sharded",
                       run_dir=run_dir, max_shards=1)
        resumed = run_experiment("e2", preset="quick", executor="sharded",
                                 run_dir=run_dir, resume=True)
        checkpoints = sorted(run_dir.glob("shard-*.json"))
        assert len(checkpoints) == 2
        total = sum(
            json.loads(path.read_text())["compute_seconds"]
            for path in checkpoints
        )
        assert resumed.wall_seconds == pytest.approx(total)
        # the resuming invocation itself computed only the second shard
        assert resumed.invocation_seconds < resumed.wall_seconds * 2


# ----------------------------------------------------------------------
# result schema
# ----------------------------------------------------------------------
class TestResultSchema:
    def test_round_trip(self, serial_e2):
        loaded = ExperimentResult.from_json(serial_e2.to_json())
        assert loaded.rows == serial_e2.rows
        assert loaded.pending_points == 0
        assert loaded.executor == serial_e2.executor
        assert loaded.wall_seconds == pytest.approx(
            serial_e2.wall_seconds, abs=1e-4
        )
        assert json.loads(serial_e2.to_json())["schema"] == RESULT_SCHEMA

    def test_schema_one_still_loads(self):
        legacy = {
            "schema": 1,
            "experiment": "e2",
            "title": "legacy",
            "columns": ["n"],
            "rows": [{"n": 16}],
            "wall_seconds": 2.5,
        }
        result = ExperimentResult.from_json_dict(legacy)
        assert result.wall_seconds == 2.5
        assert result.invocation_seconds == 2.5
        assert result.pending_points == 0
        assert result.executor == "serial"

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported result schema"):
            ExperimentResult.from_json_dict({"schema": 99})

    def test_partial_result_serializes_pending(self, tmp_path):
        partial = run_experiment("e2", preset="quick", executor="sharded",
                                 run_dir=tmp_path / "run", max_shards=1)
        data = json.loads(partial.to_json())
        assert data["pending_points"] == 1
        assert data["executor"] == "sharded"
        assert not ExperimentResult.from_json_dict(data).complete


class TestRunnerExecutorWiring:
    def test_instance_with_sharded_kwargs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="executor instance"):
            run_experiment("e2", preset="quick",
                           executor=ShardedExecutor(run_dir=tmp_path / "r"),
                           resume=True)

    def test_negative_max_shards_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            run_experiment("e2", preset="quick", executor="sharded",
                           max_shards=-1)


class TestDefaultRunDirectory:
    def test_default_dir_farm_then_bare_resume_collects(self, serial_e2,
                                                        monkeypatch, tmp_path):
        # the default directory name must not depend on the shard layout:
        # a --shard K/N farm run and a bare --resume collect (different
        # implied layouts) must resolve to the same directory
        import repro.experiments.executors as executors

        monkeypatch.setattr(executors, "default_run_root", lambda: tmp_path)
        run_experiment("e2", preset="quick", shard=(0, 2))
        collected = run_experiment("e2", preset="quick", resume=True)
        assert collected.pending_points == 0
        assert collected.rows == serial_e2.rows
        # exactly one run directory was created, holding the 2-shard layout
        dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(dirs) == 1
        assert sorted(p.name for p in dirs[0].glob("shard-*.json")) == [
            "shard-0000.json", "shard-0001.json",
        ]

    def test_processes_with_sharded_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not supported by the sharded"):
            run_experiment("e2", preset="quick", resume=True,
                           run_dir=tmp_path / "r", processes=4)

    def test_explicit_serial_with_processes_rejected(self):
        with pytest.raises(ValueError, match="--executor process"):
            make_executor("serial", processes=4)


class TestNonFiniteRows:
    def test_checkpoints_stay_strict_json_and_rows_round_trip(self, tmp_path):
        # rows with inf (e10's degenerate estimates) must produce strict
        # RFC 8259 checkpoint files AND decode back to the exact floats
        import math

        from repro.experiments.registry import ExperimentSpec

        spec = ExperimentSpec(
            id="synthetic",
            title="synthetic",
            columns=("n", "value"),
            point_fn=lambda n: {"n": n, "value": math.inf if n == 1 else 1.5},
            presets={name: {"sizes": (1, 2)}
                     for name in ("quick", "default", "hot")},
        )
        serial = run_experiment(spec, preset="quick")
        sharded = run_experiment(spec, preset="quick",
                                 executor=ShardedExecutor(run_dir=tmp_path))
        assert sharded.rows == serial.rows
        assert sharded.rows[0]["value"] == math.inf
        for path in tmp_path.glob("shard-*.json"):
            # strict parsing: the bare Infinity token would raise here
            json.loads(path.read_text(), parse_constant=lambda s: 1 / 0)

    def test_processes_with_executor_instance_rejected(self):
        from repro.experiments.executors import SerialExecutor

        with pytest.raises(ValueError, match="executor instance"):
            run_experiment("e2", preset="quick", executor=SerialExecutor(),
                           processes=8)


# ----------------------------------------------------------------------
# the adversity axis through the executor matrix
# ----------------------------------------------------------------------
class TestAdversitySharding:
    """The adversity schedule must be part of the sweep identity.

    Fault draws come from per-point substreams, so adversity rows must be
    bit-identical across backends and resumes; and a run directory written
    under one adversity configuration must refuse shards for another (or
    for none at all).
    """

    OVERRIDES = {"adversity": "loss"}

    @pytest.fixture(scope="class")
    def serial_adversity(self):
        return run_experiment("e7", preset="quick", overrides=self.OVERRIDES)

    def test_process_rows_match_serial(self, serial_adversity):
        result = run_experiment("e7", preset="quick", overrides=self.OVERRIDES,
                                executor="process", processes=2)
        assert result.rows == serial_adversity.rows

    def test_sharded_rows_match_serial(self, serial_adversity, tmp_path):
        result = run_experiment("e7", preset="quick", overrides=self.OVERRIDES,
                                executor="sharded", run_dir=tmp_path / "run")
        assert result.rows == serial_adversity.rows

    def test_interrupted_adversity_run_resumes_to_serial_rows(
            self, serial_adversity, tmp_path):
        run_dir = tmp_path / "run"
        partial = run_experiment("e7", preset="quick", overrides=self.OVERRIDES,
                                 executor="sharded", run_dir=run_dir,
                                 max_shards=1)
        assert partial.pending_points == 1
        resumed = run_experiment("e7", preset="quick", overrides=self.OVERRIDES,
                                 executor="sharded", run_dir=run_dir,
                                 resume=True)
        assert resumed.pending_points == 0
        assert resumed.rows == serial_adversity.rows

    def test_digest_covers_the_adversity_schedule(self):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("e7")
        clean = spec.params_for("quick")
        loss = spec.params_for("quick", {"adversity": "loss"})
        tweaked = spec.params_for(
            "quick", {"adversity": {"name": "loss", "loss_rate": 0.2}}
        )
        digests = {
            sweep_digest("e7", "quick", params, 2, 2)
            for params in (clean, loss, tweaked)
        }
        assert len(digests) == 3  # absent, preset, and refined all differ

    def test_resume_refuses_checkpoints_from_other_adversity(self, tmp_path):
        run_dir = tmp_path / "run"
        run_experiment("e7", preset="quick", overrides={"adversity": "loss"},
                       executor="sharded", run_dir=run_dir)
        with pytest.raises(ExecutorConfigError, match="different sweep"):
            run_experiment("e7", preset="quick", overrides={"adversity": "jam"},
                           executor="sharded", run_dir=run_dir, resume=True)

    def test_resume_refuses_checkpoints_from_adversity_free_sweep(
            self, tmp_path):
        run_dir = tmp_path / "run"
        run_experiment("e7", preset="quick", executor="sharded",
                       run_dir=run_dir)
        with pytest.raises(ExecutorConfigError, match="different sweep"):
            run_experiment("e7", preset="quick", overrides={"adversity": "loss"},
                           executor="sharded", run_dir=run_dir, resume=True)


# ----------------------------------------------------------------------
# the xhot presets through the executor matrix
# ----------------------------------------------------------------------
class TestXhotPresetSmoke:
    """The flyweight-backed xhot presets must honour the backend contract.

    The scale probes (``e7_xhot``/``e10_xhot``) run the flyweight sim layer
    and per-node substreams; their rows must stay bit-identical across
    backends exactly like the classic presets.  The sweep sizes are
    overridden downward so the smoke exercises the xhot *configuration*
    (scale-free topology, gated size protocols) without the n = 102400
    wall-clock — the full-size budget is checked by the CI xhot smoke and
    recorded in ``BENCH_core.json``.
    """

    E7_OVERRIDES = {"sizes": (64, 128)}
    E10_OVERRIDES = {"sizes": (36, 64)}

    @pytest.fixture(scope="class")
    def serial_e7_xhot(self):
        return run_experiment("e7", preset="xhot", overrides=self.E7_OVERRIDES)

    @pytest.fixture(scope="class")
    def serial_e10_xhot(self):
        return run_experiment("e10", preset="xhot", overrides=self.E10_OVERRIDES)

    def test_e7_xhot_process_rows_match_serial(self, serial_e7_xhot):
        result = run_experiment("e7", preset="xhot", overrides=self.E7_OVERRIDES,
                                executor="process", processes=2)
        assert result.rows == serial_e7_xhot.rows

    def test_e7_xhot_sharded_rows_match_serial(self, serial_e7_xhot, tmp_path):
        result = run_experiment("e7", preset="xhot", overrides=self.E7_OVERRIDES,
                                executor="sharded", run_dir=tmp_path / "run")
        assert result.rows == serial_e7_xhot.rows

    def test_e10_xhot_process_rows_match_serial(self, serial_e10_xhot):
        result = run_experiment("e10", preset="xhot",
                                overrides=self.E10_OVERRIDES,
                                executor="process", processes=2)
        assert result.rows == serial_e10_xhot.rows

    def test_e10_xhot_sharded_resumes_to_serial_rows(self, serial_e10_xhot,
                                                     tmp_path):
        run_dir = tmp_path / "run"
        partial = run_experiment("e10", preset="xhot",
                                 overrides=self.E10_OVERRIDES,
                                 executor="sharded", run_dir=run_dir,
                                 max_shards=1)
        assert partial.pending_points == 1
        resumed = run_experiment("e10", preset="xhot",
                                 overrides=self.E10_OVERRIDES,
                                 executor="sharded", run_dir=run_dir,
                                 resume=True)
        assert resumed.pending_points == 0
        assert resumed.rows == serial_e10_xhot.rows

    def test_e10_xhot_gates_the_size_columns(self, serial_e10_xhot):
        for row in serial_e10_xhot.rows:
            assert row["det_size_exact"] == "-"
            assert row["mean_GL_estimate"] == "-"


# ----------------------------------------------------------------------
# concurrent farm-out: separate *processes* racing on one run directory
# ----------------------------------------------------------------------
class TestConcurrentShardRace:
    """Two real ``repro run --shard K/N`` processes sharing a run directory.

    The claimed mkstemp-based atomicity of manifest/checkpoint writes is
    exercised end to end here: both processes race to create the manifest
    and write their shards concurrently, and a follow-up ``--resume`` merge
    must reproduce the serial rows exactly — no torn files, no lost shards,
    no digest refusals from a half-written manifest.
    """

    SIZES = (16, 20, 24, 28, 32, 36)

    def _shard_command(self, shard, run_dir):
        import sys

        return [
            sys.executable, "-m", "repro", "run", "e2", "--preset", "quick",
            "--sizes", *[str(n) for n in self.SIZES],
            "--shard", f"{shard}/2", "--run-dir", str(run_dir), "--quiet",
        ]

    def test_two_process_shard_race_merges_to_serial(self, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        overrides = {"sizes": self.SIZES}
        serial = run_experiment("e2", preset="quick", overrides=overrides)
        run_dir = tmp_path / "run"
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                self._shard_command(shard, run_dir), env=env,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for shard in (1, 2)
        ]
        for proc in procs:
            stdout, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()
        # both processes raced on manifest creation and checkpoint writes;
        # the merge must now be complete and bit-identical to serial
        merged = run_experiment("e2", preset="quick", overrides=overrides,
                                resume=True, run_dir=run_dir)
        assert merged.pending_points == 0
        assert merged.rows == serial.rows
        shard_files = sorted(p.name for p in run_dir.glob("shard-*.json"))
        assert shard_files == ["shard-0000.json", "shard-0001.json"]
        # no leaked temp files from the atomic-write protocol
        assert not list(run_dir.glob("*.tmp"))
