"""Tests for the deterministic partitioning algorithm (Section 3)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.complexity import (
    det_partition_message_bound,
    det_partition_time_bound,
)
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.core.partition.validation import validate_partition
from repro.topology.generators import (
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
    ring_graph,
)
from repro.topology.graph import WeightedGraph
from repro.topology.weights import assign_distinct_weights


def partition(graph, **kwargs):
    return DeterministicPartitioner(graph, **kwargs).run()


class TestInvariants:
    def test_grid_partition_meets_all_paper_bounds(self, medium_grid):
        result = partition(medium_grid)
        n = medium_grid.num_nodes()
        report = validate_partition(
            result.forest,
            medium_grid,
            check_mst_subtrees=True,
            min_size_bound=math.sqrt(n),
            max_radius_bound=8 * math.sqrt(n),
            max_fragments_bound=math.sqrt(n),
        )
        assert report.ok, report.violations

    def test_ring_partition(self):
        graph = assign_distinct_weights(ring_graph(100), seed=4)
        result = partition(graph)
        report = validate_partition(
            result.forest, graph, check_mst_subtrees=True,
            min_size_bound=10, max_radius_bound=80,
        )
        assert report.ok, report.violations

    def test_sparse_random_graph(self):
        graph = assign_distinct_weights(erdos_renyi_graph(90, 0.04, seed=2), seed=2)
        result = partition(graph)
        n = graph.num_nodes()
        report = validate_partition(
            result.forest, graph, check_mst_subtrees=True,
            min_size_bound=math.sqrt(n), max_radius_bound=8 * math.sqrt(n),
        )
        assert report.ok, report.violations

    def test_geometric_graph(self):
        graph = assign_distinct_weights(random_geometric_graph(80, seed=6), seed=6)
        result = partition(graph)
        report = validate_partition(result.forest, graph, check_mst_subtrees=True)
        assert report.ok

    def test_single_node_network(self):
        graph = WeightedGraph()
        graph.add_node(0)
        result = partition(graph)
        assert result.num_fragments == 1

    def test_two_node_network(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        result = partition(graph)
        assert result.num_fragments == 1

    def test_levels_grow_per_phase(self, medium_grid):
        result = partition(medium_grid)
        for record in result.phases:
            if record.active_fragments:
                assert record.fragments_after < record.fragments_before

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_property_random_grids_meet_bounds(self, side, seed):
        graph = assign_distinct_weights(grid_graph(side, side), seed=seed)
        result = partition(graph)
        n = graph.num_nodes()
        report = validate_partition(
            result.forest, graph, check_mst_subtrees=True,
            min_size_bound=math.sqrt(n), max_radius_bound=8 * math.sqrt(n),
            max_fragments_bound=math.sqrt(n),
        )
        assert report.ok, report.violations


class TestComplexity:
    def test_time_within_constant_of_bound(self, medium_grid):
        result = partition(medium_grid)
        bound = det_partition_time_bound(medium_grid.num_nodes())
        assert result.metrics.rounds <= 40 * bound

    def test_messages_within_constant_of_bound(self, medium_grid):
        result = partition(medium_grid)
        bound = det_partition_message_bound(
            medium_grid.num_nodes(), medium_grid.num_edges()
        )
        assert result.metrics.point_to_point_messages <= 12 * bound

    def test_synchronized_phases_charge_at_least_busy_time(self, medium_grid):
        result = partition(medium_grid)
        assert result.metrics.rounds >= result.busy_rounds

    def test_unsynchronized_mode_charges_busy_time_only(self, medium_grid):
        result = partition(medium_grid, synchronized_phases=False)
        assert result.metrics.rounds == result.busy_rounds

    def test_phase_count_is_logarithmic(self, medium_grid):
        result = partition(medium_grid)
        assert len(result.phases) <= math.ceil(math.log2(result.target_size)) + 1


class TestTargetSize:
    def test_custom_target_size(self, medium_grid):
        result = partition(medium_grid, target_size=4)
        assert result.forest.min_size() >= 4
        assert result.target_size == 4

    def test_target_larger_than_default_gives_fewer_fragments(self, medium_grid):
        small = partition(medium_grid, target_size=4).num_fragments
        large = partition(medium_grid, target_size=16).num_fragments
        assert large <= small

    def test_invalid_inputs_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(ValueError):
            DeterministicPartitioner(graph)
        disconnected = WeightedGraph()
        disconnected.add_nodes([0, 1])
        with pytest.raises(ValueError):
            DeterministicPartitioner(disconnected)

    def test_determinism(self, medium_grid):
        first = partition(medium_grid)
        second = partition(medium_grid)
        assert first.forest.parent_map() == second.forest.parent_map()
        assert first.metrics.rounds == second.metrics.rounds


class TestNonIntegerNodes:
    """The hot loops index nodes 0..n-1; when the graph's own labels are NOT
    that enumeration (the `identity` fast path is off), the general
    translation path must produce an equally valid, deterministic result."""

    def _relabeled_grid(self):
        graph = assign_distinct_weights(grid_graph(8, 8), seed=11)
        return graph.relabeled({node: f"node-{node}" for node in graph.nodes()})

    def test_string_labelled_partition_is_valid(self):
        graph = self._relabeled_grid()
        result = partition(graph)
        n = graph.num_nodes()
        report = validate_partition(
            result.forest,
            graph,
            check_mst_subtrees=True,
            min_size_bound=math.sqrt(n),
            max_radius_bound=8 * math.sqrt(n),
        )
        assert report.ok, report.violations

    def test_string_labelled_partition_is_deterministic(self):
        first = partition(self._relabeled_grid())
        second = partition(self._relabeled_grid())
        assert first.forest.parent_map() == second.forest.parent_map()
        assert first.metrics.rounds == second.metrics.rounds
        assert (
            first.metrics.point_to_point_messages
            == second.metrics.point_to_point_messages
        )

    def test_float_labels_do_not_take_identity_fast_path(self):
        # 2.0 == 2 compares equal to its index but is not usable as one;
        # the identity fast path must reject it and the general path run
        graph = assign_distinct_weights(grid_graph(4, 4), seed=11)
        floats = graph.relabeled({node: float(node) for node in graph.nodes()})
        result = partition(floats)
        report = validate_partition(result.forest, floats, check_mst_subtrees=True)
        assert report.ok, report.violations
