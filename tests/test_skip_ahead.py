"""Statistical and accounting equivalence of the geometric skip-ahead path.

The skip-ahead scheduler (:mod:`repro.protocols.collision.geometric`) must
sample *exactly* the distribution the per-slot Bernoulli loop realises, while
charging the same slot accounting.  Three layers of guarantees:

* the samplers themselves (idle-run length, busy-slot split, collision
  multiplicity) match naive per-slot Bernoulli simulation distribution-wise
  on fixed seed batches;
* whole contention runs match the forced per-slot implementation
  (``run_contention(..., skip_ahead=False)``) in success-slot distribution,
  slot totals, and outcome mix;
* where the trajectory is deterministic regardless of the RNG stream (single
  contender, saturated estimate), the two paths agree *exactly*, as does the
  fast-forwarded slot accounting.
"""

import math
import random
from collections import Counter

import pytest

from repro.protocols.collision.base import run_contention
from repro.protocols.collision.capetanakis import CapetanakisContender
from repro.protocols.collision.geometric import (
    collision_multiplicity,
    geometric_idle_run,
    success_given_busy,
)
from repro.protocols.collision.metcalfe_boggs import MetcalfeBoggsContender
from repro.sim.channel import SlottedChannel
from repro.sim.errors import ProtocolError
from repro.sim.metrics import MetricsRecorder


def _mb_batch(k, seed, estimate=None):
    rng = random.Random(seed)
    return [
        MetcalfeBoggsContender(
            identity=i,
            estimated_contenders=estimate if estimate is not None else k,
            rng=random.Random(rng.randrange(2**63)),
            payload=i,
        )
        for i in range(k)
    ]


class TestGeometricSampler:
    def test_idle_run_matches_bernoulli_distribution(self):
        """Inverse-transform skip counts ≈ naive coin-flip run lengths."""
        q = 0.8  # per-slot idle probability
        rng = random.Random(42)
        trials = 20_000
        sampled = Counter(geometric_idle_run(rng.random(), q) for _ in range(trials))

        naive_rng = random.Random(43)
        naive = Counter()
        for _ in range(trials):
            run = 0
            while naive_rng.random() < q:
                run += 1
            naive[run] += 1

        # compare the cell frequencies of the common support head
        for run_length in range(8):
            expected = (1 - q) * q ** run_length
            assert abs(sampled[run_length] / trials - expected) < 0.012
            assert abs(naive[run_length] / trials - expected) < 0.012
        # and the means (geometric mean q/(1-q) = 4.0)
        mean = sum(r * c for r, c in sampled.items()) / trials
        assert abs(mean - q / (1 - q)) < 0.12

    def test_idle_run_zero_probability(self):
        assert geometric_idle_run(0.999, 0.0) == 0

    def test_idle_run_u_zero(self):
        assert geometric_idle_run(0.0, 0.9) == 0

    def test_success_given_busy_matches_empirical(self):
        m, p = 12, 1.0 / 12.0
        rng = random.Random(7)
        busy = success = 0
        for _ in range(30_000):
            transmitters = sum(1 for _ in range(m) if rng.random() < p)
            if transmitters:
                busy += 1
                if transmitters == 1:
                    success += 1
        assert abs(success / busy - success_given_busy(p, m)) < 0.015

    def test_success_given_busy_edges(self):
        assert success_given_busy(1.0, 1) == 1.0
        assert success_given_busy(1.0, 5) == 0.0
        assert success_given_busy(0.5, 1) == 1.0
        with pytest.raises(ValueError):
            success_given_busy(0.5, 0)

    def test_collision_multiplicity_matches_conditional_binomial(self):
        m, p = 10, 1.0 / 10.0
        rng = random.Random(11)
        trials = 20_000
        sampled = Counter(
            collision_multiplicity(rng.random(), p, m) for _ in range(trials)
        )
        naive_rng = random.Random(12)
        naive = Counter()
        while sum(naive.values()) < trials:
            transmitters = sum(1 for _ in range(m) if naive_rng.random() < p)
            if transmitters >= 2:
                naive[transmitters] += 1
        for c in (2, 3, 4):
            assert abs(sampled[c] / trials - naive[c] / trials) < 0.02
        assert min(sampled) >= 2 and max(sampled) <= m

    def test_collision_multiplicity_edges(self):
        assert collision_multiplicity(0.5, 1.0, 4) == 4
        with pytest.raises(ValueError):
            collision_multiplicity(0.5, 0.3, 1)


class TestRunEquivalence:
    """Fast-path whole runs vs the forced per-slot loop, fixed seed batches."""

    @staticmethod
    def _stats(skip_ahead, k, batches, estimate=None):
        totals, idles, collisions, success_slots = [], [], [], []
        for batch in range(batches):
            contenders = _mb_batch(k, seed=1000 + batch, estimate=estimate)
            out = run_contention(contenders, skip_ahead=skip_ahead)
            totals.append(out.slots_used)
            idles.append(out.idle)
            collisions.append(out.collisions)
            success_slots.extend(c.success_slot for c in contenders)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        return {
            "slots": mean(totals),
            "idle": mean(idles),
            "collisions": mean(collisions),
            "success_slot": mean(success_slots),
        }

    def test_success_slot_distribution_matches_per_slot(self):
        k, batches = 32, 120
        fast = self._stats(True, k, batches)
        slow = self._stats(False, k, batches)
        # expected slots/success is e-ish; means over 120 fixed-seed batches
        # of 32 contenders agree within ~7% between the two implementations
        for key in ("slots", "idle", "collisions", "success_slot"):
            assert fast[key] == pytest.approx(slow[key], rel=0.07), (key, fast, slow)
        assert fast["slots"] < math.e * k * 1.4

    def test_overestimate_regime_matches_per_slot(self):
        # estimate 4x the field: long idle runs, the skip-ahead's home turf
        k, batches = 8, 150
        fast = self._stats(True, k, batches, estimate=4 * k)
        slow = self._stats(False, k, batches, estimate=4 * k)
        for key in ("slots", "idle", "success_slot"):
            assert fast[key] == pytest.approx(slow[key], rel=0.08), (key, fast, slow)

    def test_single_contender_exact_agreement(self):
        # estimate 1 → transmit probability 1: the trajectory is deterministic,
        # so both paths agree exactly, not just in distribution
        for skip_ahead in (True, False):
            (contender,) = _mb_batch(1, seed=5, estimate=1)
            out = run_contention([contender], skip_ahead=skip_ahead)
            assert out.slots_used == 1
            assert out.order == [0]
            assert out.idle == 0 and out.collisions == 0
            assert contender.success_slot == 0

    def test_saturated_estimate_deadlock_exact_agreement(self):
        # estimate 1 with two contenders → both always transmit → collision
        # forever; both paths must burn exactly max_slots and fail alike
        for skip_ahead in (True, False):
            contenders = _mb_batch(2, seed=6, estimate=1)
            metrics = MetricsRecorder()
            with pytest.raises(ProtocolError):
                run_contention(
                    contenders, max_slots=64, metrics=metrics,
                    skip_ahead=skip_ahead,
                )
            assert metrics.rounds == 64
            assert metrics.channel_collision == 64
            assert not any(c.resolved for c in contenders)

    def test_budget_exhausted_mid_idle_run_accounting(self):
        # a huge estimate makes the first idle run overshoot a tiny budget;
        # the fast path must charge exactly the budget, all idle
        contenders = _mb_batch(2, seed=9, estimate=10_000_000)
        metrics = MetricsRecorder()
        with pytest.raises(ProtocolError):
            run_contention(contenders, max_slots=10, metrics=metrics)
        assert metrics.rounds == 10
        assert metrics.channel_slots == 10
        assert metrics.channel_idle == 10

    def test_underflowed_transmit_probability_fails_like_per_slot(self):
        # an estimate so large that (1 - p)^m rounds to exactly 1.0: every
        # slot is certainly idle and both paths must burn the budget and
        # raise (not divide by log(1.0) == 0)
        for skip_ahead in (True, False):
            contenders = _mb_batch(2, seed=13, estimate=10**17)
            metrics = MetricsRecorder()
            with pytest.raises(ProtocolError):
                run_contention(
                    contenders, max_slots=32, metrics=metrics,
                    skip_ahead=skip_ahead,
                )
            assert metrics.rounds == 32
            assert metrics.channel_idle == 32

    def test_certain_idle_probability_rejected_by_sampler(self):
        with pytest.raises(ValueError):
            geometric_idle_run(0.5, 1.0)

    def test_partially_observed_batch_resumes_at_current_rate(self):
        # survivors of a budget-failed run have already heard successes; a
        # retry must contend at 1/(estimate - heard), not restart at zero,
        # and must never regress the heard count
        contenders = _mb_batch(6, seed=41, estimate=6)
        with pytest.raises(ProtocolError):
            run_contention(contenders, max_slots=2)
        survivors = [c for c in contenders if not c.resolved]
        heard = {c.contention_successes_seen() for c in survivors}
        assert len(heard) == 1
        (heard_count,) = heard
        assert heard_count == len(contenders) - len(survivors)
        outcome = run_contention(survivors, start_slot=2)
        assert sorted(outcome.order) == sorted(c.identity for c in survivors)
        for contender in survivors:
            # per-slot semantics: a resolved contender froze its count at
            # the success total it had heard when it was scheduled — which
            # can only have grown from the pre-retry count
            assert contender.contention_successes_seen() > heard_count - 1
            assert contender.contention_successes_seen() <= len(contenders)

    def test_mixed_estimates_fall_back_to_per_slot(self):
        # a non-homogeneous batch is not a shared-rate Bernoulli field; the
        # scheduler must take the per-slot loop (observable: every idle slot
        # is materialised in the channel history, none skipped)
        rng = random.Random(3)
        contenders = [
            MetcalfeBoggsContender(
                identity=i,
                estimated_contenders=4 + i,
                rng=random.Random(rng.randrange(2**63)),
                payload=i,
            )
            for i in range(4)
        ]
        channel = SlottedChannel()
        out = run_contention(contenders, channel=channel)
        assert channel.idle_slots_skipped == 0
        assert len(channel.history) == out.slots_used

    def test_deterministic_protocols_keep_per_slot_traces(self):
        # Capetanakis is deterministic: identical schedule with and without
        # the skip-ahead flag, every slot materialised
        ids = [3, 7, 11, 20, 21, 30]
        runs = []
        for skip_ahead in (True, False):
            channel = SlottedChannel()
            contenders = [CapetanakisContender(i, 32, payload=i) for i in ids]
            out = run_contention(contenders, channel=channel, skip_ahead=skip_ahead)
            assert channel.idle_slots_skipped == 0
            runs.append((out.order, out.slots_used, out.collisions, out.idle))
        assert runs[0] == runs[1]


class TestFastForwardAccounting:
    def test_channel_and_metrics_agree_with_outcome(self):
        metrics = MetricsRecorder()
        channel = SlottedChannel(metrics=metrics)
        contenders = _mb_batch(24, seed=17)
        out = run_contention(contenders, metrics=metrics, channel=channel)
        assert channel.idle_slots_skipped == out.idle
        assert channel.slots_elapsed == out.slots_used
        assert len(channel.history) == len(out.order) + out.collisions
        assert metrics.channel_slots == out.slots_used
        assert metrics.channel_idle == out.idle
        assert metrics.channel_collision == out.collisions
        assert metrics.channel_success == len(out.order)
        assert metrics.rounds == out.slots_used
        # every success event sits at the slot its winner recorded
        by_winner = {e.writer: e.slot for e in channel.successes()}
        for contender in contenders:
            assert by_winner[contender.identity] == contender.success_slot

    def test_shared_rng_streams_agree_exactly_on_accounting(self):
        # where the RNG streams are shared between the paths — i.e. before
        # the first draw diverges — the accounting has to line up exactly:
        # run the same seeds through both paths and replay the fast path's
        # event history through a fresh per-slot accountant
        contenders = _mb_batch(16, seed=23)
        metrics = MetricsRecorder()
        channel = SlottedChannel(metrics=metrics)
        out = run_contention(contenders, metrics=metrics, channel=channel)

        replay = MetricsRecorder()
        replay.record_idle_slots(channel.idle_slots_skipped)
        for event in channel.history:
            replay.record_slot(event.state, len(event.writers))
        replay.record_round(out.slots_used)
        assert replay.snapshot().as_dict() == metrics.snapshot().as_dict()

    def test_utilisation_counts_skipped_slots(self):
        channel = SlottedChannel()
        channel.resolve_slot(0, [("a", "x")])
        channel.skip_idle_slots(3)
        assert channel.slots_elapsed == 4
        assert channel.utilisation() == 0.25

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SlottedChannel().skip_idle_slots(-1)
        with pytest.raises(ValueError):
            MetricsRecorder().record_idle_slots(-1)

    def test_write_attempt_accounting_plausible(self):
        # successes contribute exactly one attempt, collisions at least two
        metrics = MetricsRecorder()
        channel = SlottedChannel(metrics=metrics)
        out = run_contention(_mb_batch(20, seed=31), metrics=metrics, channel=channel)
        assert metrics.channel_write_attempts >= len(out.order) + 2 * out.collisions
