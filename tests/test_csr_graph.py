"""Differential tests for the columnar CSR graph core (``topology/graph.py``).

The CSR view is a pure data-layout change: every consumer that walks the
``array('q')`` columns must see exactly the nodes, neighbours, weights and
orders the dict-of-dicts adjacency produced.  These tests pin that contract
differentially — dict-built graphs against their own CSR views, CSR-built
(lazy) graphs against dict-built twins, identity-labelled against
arbitrarily-labelled graphs — plus the invalidation contract (a mutation
after a view is taken must rebuild it) and the degenerate shapes (empty,
single node, isolated nodes).  The golden byte-identity assertion rides in
``tests/test_perf_equivalence.py``; topology-level equivalence of the CSR
consumers (BFS, partition, MST) is pinned by the existing suites.
"""

from __future__ import annotations

import random

import pytest

from repro.topology.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    ring_graph,
)
from repro.topology.graph import WeightedGraph, is_identity_enumeration
from repro.topology.properties import breadth_first_levels
from repro.topology.weights import assign_distinct_weights, assign_random_weights


def csr_as_adjacency(graph):
    """Rebuild a nested-dict adjacency purely from the CSR columns."""
    csr = graph.csr()
    adjacency = {}
    for slot in range(csr.n):
        row = {}
        for position in range(csr.offsets[slot], csr.offsets[slot + 1]):
            row[csr.nodes[csr.targets[position]]] = csr.weights[position]
        adjacency[csr.nodes[slot]] = row
    return adjacency


def assert_csr_matches_dicts(graph):
    """The CSR view must reproduce the adjacency dicts entry for entry, in order."""
    adjacency = graph.adjacency()
    rebuilt = csr_as_adjacency(graph)
    assert rebuilt == adjacency
    # insertion order is part of the contract (it drives BFS visit order and
    # the partitioners' workspace layout), so compare orders too
    assert list(rebuilt) == list(adjacency)
    for node in adjacency:
        assert list(rebuilt[node]) == list(adjacency[node])


def random_labeled_graph(labels, seed, edge_probability=0.4):
    """Dict-built random graph over arbitrary ``labels``."""
    rng = random.Random(seed)
    graph = WeightedGraph()
    graph.add_nodes(labels)
    weight = 1
    for i, u in enumerate(labels):
        for v in labels[i + 1:]:
            if rng.random() < edge_probability:
                graph.add_edge(u, v, weight)
                weight += 1
    return graph


class TestCSRMatchesDict:
    @pytest.mark.parametrize("seed", (1, 2, 3, 4, 5))
    def test_random_identity_graphs(self, seed):
        graph = erdos_renyi_graph(40, 0.15, seed=seed)
        assert graph.csr().identity
        assert_csr_matches_dicts(graph)

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_random_string_labeled_graphs(self, seed):
        labels = [f"host-{i}" for i in range(25)]
        graph = random_labeled_graph(labels, seed)
        csr = graph.csr()
        assert not csr.identity
        assert csr.index_of == {label: slot for slot, label in enumerate(labels)}
        assert_csr_matches_dicts(graph)

    def test_float_labeled_graph(self):
        labels = [0.5, 1.5, 2.25, -3.0, 4.125]
        graph = random_labeled_graph(labels, seed=7, edge_probability=0.8)
        assert not graph.csr().identity
        assert_csr_matches_dicts(graph)

    def test_mixed_hashable_labels(self):
        graph = WeightedGraph()
        graph.add_edge("a", (1, 2), 1.0)
        graph.add_edge((1, 2), frozenset({3}), 2.0)
        graph.add_edge("a", frozenset({3}), 3.0)
        assert_csr_matches_dicts(graph)

    def test_canonical_edges_match_edges_enumeration(self):
        graph = erdos_renyi_graph(30, 0.2, seed=9)
        csr = graph.csr()
        edge_u, edge_v, edge_w = csr.canonical_edges()
        canonical = [
            (csr.nodes[u], csr.nodes[v], w)
            for u, v, w in zip(edge_u, edge_v, edge_w)
        ]
        assert canonical == [tuple(edge) for edge in graph.edges()]


class TestDegenerateShapes:
    def test_empty_graph(self):
        graph = WeightedGraph()
        csr = graph.csr()
        assert csr.n == 0
        assert list(csr.offsets) == [0]
        assert len(csr.targets) == 0
        assert all(len(column) == 0 for column in csr.canonical_edges())
        assert_csr_matches_dicts(graph)

    def test_single_node(self):
        graph = WeightedGraph()
        graph.add_node(0)
        csr = graph.csr()
        assert csr.n == 1 and csr.num_edges == 0
        assert list(csr.offsets) == [0, 0]
        assert_csr_matches_dicts(graph)

    def test_isolated_nodes_between_connected_ones(self):
        graph = WeightedGraph()
        graph.add_nodes(range(5))
        graph.add_edge(0, 4, 2.0)
        csr = graph.csr()
        assert [csr.offsets[i + 1] - csr.offsets[i] for i in range(5)] == [
            1, 0, 0, 0, 1
        ]
        assert_csr_matches_dicts(graph)


class TestInvalidation:
    def test_mutation_after_view_rebuilds(self):
        graph = path_graph(6)
        before = graph.csr()
        assert graph.csr() is before  # cached while unmutated
        graph.add_edge(0, 5, 9.0)
        after = graph.csr()
        assert after is not before
        assert after.num_edges == before.num_edges + 1
        assert_csr_matches_dicts(graph)

    def test_remove_edge_invalidates(self):
        graph = ring_graph(8)
        before = graph.csr()
        graph.remove_edge(0, 1)
        assert graph.csr() is not before
        assert_csr_matches_dicts(graph)

    def test_set_weight_invalidates(self):
        graph = grid_graph(3, 3)
        before = graph.csr()
        graph.set_weight(0, 1, 42.0)
        after = graph.csr()
        assert after is not before
        assert after.weights[after.offsets[0]] == 42.0
        assert_csr_matches_dicts(graph)

    def test_stale_view_keeps_old_data(self):
        graph = path_graph(4)
        before = graph.csr()
        edges_before = before.num_edges
        graph.add_edge(0, 3, 5.0)
        # an already-taken view is immutable: it must not see the mutation
        assert before.num_edges == edges_before

    def test_add_node_invalidates_csr_born_graph(self):
        # regression: the snapshot encodes the node set, so an isolated-node
        # insertion on a CSR-born graph must rebuild it — CSR consumers used
        # to silently miss the new node
        graph = path_graph(3)
        before = graph.csr()
        graph.add_node(3)
        after = graph.csr()
        assert after is not before
        assert after.n == 4
        weighted = assign_random_weights(graph, seed=1)
        assert weighted.has_node(3)
        assert breadth_first_levels(graph, 3) == {3: 0}
        assert_csr_matches_dicts(graph)

    def test_add_node_invalidates_dict_built_graph(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        before = graph.csr()
        graph.add_node(2)
        after = graph.csr()
        assert after is not before and after.n == 3
        assert_csr_matches_dicts(graph)

    def test_add_existing_node_keeps_view_cached(self):
        graph = path_graph(3)
        before = graph.csr()
        graph.add_node(1)  # no-op: node already present
        assert graph.csr() is before


class TestLazyBuiltGraphs:
    """Generator-built (CSR-first) graphs against dict-built twins."""

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_barabasi_albert_matches_dict_twin(self, seed):
        lazy = barabasi_albert_graph(60, 3, seed=seed)
        twin = WeightedGraph()
        twin.add_nodes(lazy.nodes())
        for u, v, w in lazy.edges():
            twin.add_edge(u, v, w)
        assert lazy.adjacency() == twin.adjacency()
        assert lazy.edges() == twin.edges()
        assert lazy.total_weight() == twin.total_weight()
        assert_csr_matches_dicts(lazy)

    def test_weight_assignment_matches_dict_built(self):
        lazy = grid_graph(6, 6)
        twin = WeightedGraph()
        twin.add_nodes(lazy.nodes())
        for u, v, w in lazy.edges():
            twin.add_edge(u, v, w)
        for assign in (
            lambda g: assign_distinct_weights(g, seed=3),
            lambda g: assign_random_weights(g, seed=3),
        ):
            weighted_lazy = assign(lazy)
            weighted_twin = assign(twin)
            assert weighted_lazy.edges() == weighted_twin.edges()
            assert weighted_lazy.adjacency() == weighted_twin.adjacency()

    def test_weight_assignment_on_labeled_graph(self):
        labels = [f"s{i}" for i in range(12)]
        graph = random_labeled_graph(labels, seed=5, edge_probability=0.5)
        weighted = assign_distinct_weights(graph, seed=2)
        assert weighted.nodes() == graph.nodes()
        assert sorted(e.weight for e in weighted.edges()) == list(
            map(float, range(1, graph.num_edges() + 1))
        )
        assert_csr_matches_dicts(weighted)

    def test_copy_shares_then_diverges(self):
        lazy = ring_graph(10)
        clone = lazy.copy()
        assert clone.adjacency() == lazy.adjacency()
        clone.add_edge(0, 5, 7.0)
        assert lazy.has_edge(0, 5) is False
        assert clone.has_edge(0, 5) is True

    def test_bfs_identical_on_lazy_and_dict_built(self):
        lazy = barabasi_albert_graph(50, 2, seed=4)
        twin = WeightedGraph()
        twin.add_nodes(lazy.nodes())
        for u, v, w in lazy.edges():
            twin.add_edge(u, v, w)
        assert breadth_first_levels(lazy, 0) == breadth_first_levels(twin, 0)
        assert list(breadth_first_levels(lazy, 0)) == list(
            breadth_first_levels(twin, 0)
        )


class TestIdentityDetection:
    def test_identity_enumeration_cases(self):
        assert is_identity_enumeration([0, 1, 2])
        assert is_identity_enumeration([])
        assert not is_identity_enumeration([1, 2, 3])
        assert not is_identity_enumeration(["a", "b"])

    def test_bfs_accepts_float_alias_source_on_identity_graph(self):
        graph = path_graph(5)
        assert breadth_first_levels(graph, 2.0) == breadth_first_levels(graph, 2)

    def test_bfs_rejects_unknown_source(self):
        graph = path_graph(3)
        with pytest.raises(KeyError):
            breadth_first_levels(graph, 99)
        with pytest.raises(KeyError):
            breadth_first_levels(WeightedGraph(), 0)


class TestHasNodeOnLazyIdentityGraph:
    """``has_node`` on a CSR-born graph must match the dict lookup's
    semantics without falling into range's O(n) equality scan."""

    def test_int_and_numeric_alias_membership(self):
        graph = path_graph(5)
        assert graph._adj is None  # still lazy: exercises the CSR path
        assert graph.has_node(0) and graph.has_node(4)
        assert not graph.has_node(5) and not graph.has_node(-1)
        # numeric aliases hash/compare equal to their int, like dict keys
        assert graph.has_node(2.0) and 2.0 in graph
        assert not graph.has_node(2.5)
        assert graph.has_node(True)  # True == 1
        assert graph._adj is None  # none of the above materialised dicts

    def test_non_numeric_labels_are_absent(self):
        graph = path_graph(5)
        assert not graph.has_node("2")
        assert not graph.has_node((2,))
        assert "2" not in graph

    def test_unhashable_label_raises_like_dict_lookup(self):
        graph = path_graph(5)
        with pytest.raises(TypeError):
            graph.has_node([2])
        twin = WeightedGraph()
        twin.add_nodes(range(5))
        with pytest.raises(TypeError):
            twin.has_node([2])
